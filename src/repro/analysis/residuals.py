"""Residual significance analysis (the analysis the paper omitted).

Section 3 of the paper notes: "The instances in which forecast accuracy is
better than measurement accuracy are curious.  An analysis of the
measurement and forecasting residuals is inconclusive with respect to the
significance of this difference...  we omit that analysis in favor of
brevity."  This module performs exactly that analysis so the reproduction
can report it:

* paired per-sample absolute residuals of two estimators against the same
  ground truth;
* the Wilcoxon signed-rank test on the residual differences (robust,
  distribution-free -- appropriate because the residuals are decidedly
  non-Gaussian);
* a paired bootstrap confidence interval on the MAE difference, which is
  the quantity the paper's tables actually print.

The verdict mirrors the paper's experience: on our traces the
forecast-vs-measurement differences are small and mostly *not*
significant, i.e. "measurement and forecasting accuracy are approximately
the same" survives scrutiny.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["ResidualComparison", "compare_residuals", "bootstrap_mae_difference"]


@dataclass(frozen=True)
class ResidualComparison:
    """Outcome of comparing two estimators' absolute residuals.

    Attributes
    ----------
    mae_a / mae_b:
        Mean absolute error of each estimator.
    mae_difference:
        ``mae_a - mae_b`` (negative = A more accurate).
    wilcoxon_p:
        Two-sided Wilcoxon signed-rank p-value on the paired |residual|
        differences (NaN when every pair ties).
    ci_low / ci_high:
        Bootstrap 95 % confidence interval for the MAE difference.
    n:
        Number of paired samples.
    """

    mae_a: float
    mae_b: float
    mae_difference: float
    wilcoxon_p: float
    ci_low: float
    ci_high: float
    n: int

    @property
    def significant(self) -> bool:
        """True when the 95 % CI excludes zero and Wilcoxon p < 0.05."""
        if np.isnan(self.wilcoxon_p):
            return False
        ci_excludes_zero = (self.ci_low > 0.0) or (self.ci_high < 0.0)
        return bool(ci_excludes_zero and self.wilcoxon_p < 0.05)

    def verdict(self) -> str:
        """Human-readable conclusion."""
        if not self.significant:
            return "no significant accuracy difference"
        better = "A" if self.mae_difference < 0.0 else "B"
        return f"estimator {better} is significantly more accurate"


def bootstrap_mae_difference(
    residuals_a: np.ndarray,
    residuals_b: np.ndarray,
    *,
    n_boot: int = 2000,
    confidence: float = 0.95,
    rng: np.random.Generator | int | None = 0,
) -> tuple[float, float]:
    """Paired bootstrap CI for ``mean|res_a| - mean|res_b|``.

    Parameters
    ----------
    residuals_a / residuals_b:
        Paired signed residuals (same ground-truth samples).
    n_boot:
        Bootstrap replicates.
    confidence:
        Two-sided confidence level in (0, 1).
    rng:
        Seed or generator for reproducibility.
    """
    a = np.abs(np.asarray(residuals_a, dtype=np.float64))
    b = np.abs(np.asarray(residuals_b, dtype=np.float64))
    if a.shape != b.shape or a.ndim != 1 or a.size < 2:
        raise ValueError("need paired 1-D residual arrays of length >= 2")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    diff = a - b
    n = diff.size
    indices = gen.integers(0, n, size=(int(n_boot), n))
    replicates = diff[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(replicates, alpha)),
        float(np.quantile(replicates, 1.0 - alpha)),
    )


def compare_residuals(
    predictions_a,
    predictions_b,
    truth,
    *,
    n_boot: int = 2000,
    rng: np.random.Generator | int | None = 0,
) -> ResidualComparison:
    """Full paired comparison of two estimators against one ground truth.

    Parameters
    ----------
    predictions_a / predictions_b:
        The two estimators' values for the same ``truth`` samples (e.g.
        NWS forecasts vs raw pre-test measurements).
    truth:
        Ground-truth observations (the test-process availabilities).
    """
    a = np.asarray(predictions_a, dtype=np.float64)
    b = np.asarray(predictions_b, dtype=np.float64)
    t = np.asarray(truth, dtype=np.float64)
    if not (a.shape == b.shape == t.shape) or a.ndim != 1 or a.size < 5:
        raise ValueError("need three matched 1-D arrays of length >= 5")

    res_a = a - t
    res_b = b - t
    abs_diff = np.abs(res_a) - np.abs(res_b)
    if np.allclose(abs_diff, 0.0):
        p_value = float("nan")
    else:
        p_value = float(stats.wilcoxon(np.abs(res_a), np.abs(res_b)).pvalue)
    ci_low, ci_high = bootstrap_mae_difference(res_a, res_b, n_boot=n_boot, rng=rng)
    return ResidualComparison(
        mae_a=float(np.abs(res_a).mean()),
        mae_b=float(np.abs(res_b).mean()),
        mae_difference=float(abs_diff.mean()),
        wilcoxon_p=p_value,
        ci_low=ci_low,
        ci_high=ci_high,
        n=a.size,
    )
