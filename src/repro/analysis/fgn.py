"""Exact fractional Gaussian noise synthesis (Davies-Harte method).

The paper cites Mandelbrot/Taqqu/Willinger/Leland/Wilson for the Hurst
effect.  To *validate* our Hurst estimators (Table 4, Figure 3) we need a
generator whose true H is known; fractional Gaussian noise (fGn) is the
canonical choice.  The Davies-Harte circulant-embedding construction is
exact: the output is a genuine stationary Gaussian sequence with the fGn
autocovariance, produced in O(n log n).

fGn with Hurst parameter H is the increment process of fractional Brownian
motion; its autocovariance is

.. math::

    \\gamma(k) = \\tfrac{\\sigma^2}{2}\\left(|k+1|^{2H} - 2|k|^{2H}
                + |k-1|^{2H}\\right).

For H = 0.5 this is white noise; for H in (0.5, 1) the series is
long-range dependent, matching the CPU availability traces in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.analysis._validate import positive_int

__all__ = ["fgn", "fbm", "fgn_autocovariance"]


def _check_hurst(hurst: float) -> float:
    h = float(hurst)
    if not 0.0 < h < 1.0:
        raise ValueError(f"Hurst parameter must be in (0, 1), got {hurst}")
    return h


def fgn_autocovariance(hurst: float, nlags: int, *, sigma: float = 1.0) -> np.ndarray:
    """Autocovariance sequence gamma(0..nlags) of fGn with the given H.

    Parameters
    ----------
    hurst:
        Hurst parameter in (0, 1).
    nlags:
        Largest lag (inclusive).
    sigma:
        Marginal standard deviation of the noise.

    Returns
    -------
    numpy.ndarray
        Array of length ``nlags + 1``; ``result[0] == sigma**2``.
    """
    h = _check_hurst(hurst)
    nlags = positive_int(nlags + 1, name="nlags + 1") - 1
    k = np.arange(nlags + 1, dtype=np.float64)
    two_h = 2.0 * h
    gamma = 0.5 * (
        np.abs(k + 1.0) ** two_h - 2.0 * np.abs(k) ** two_h + np.abs(k - 1.0) ** two_h
    )
    return (sigma * sigma) * gamma


def fgn(
    n: int,
    hurst: float,
    *,
    sigma: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Generate ``n`` samples of exact fractional Gaussian noise.

    Uses Davies-Harte circulant embedding: the autocovariance sequence of
    length ``n`` is reflected into a circulant of size ``2n``, whose
    eigenvalues (the real FFT of the first row) are provably non-negative for
    fGn, so the square-root filter applied to complex white noise yields an
    exact sample path.

    Parameters
    ----------
    n:
        Number of samples (>= 1).
    hurst:
        Hurst parameter in (0, 1).  ``0.5`` gives i.i.d. N(0, sigma^2).
    sigma:
        Marginal standard deviation.
    rng:
        ``numpy.random.Generator``, an integer seed, or None for
        nondeterministic entropy.

    Returns
    -------
    numpy.ndarray
        Array of ``n`` floats with mean 0 and variance ``sigma**2``.
    """
    n = positive_int(n, name="n")
    h = _check_hurst(hurst)
    gen = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    if h == 0.5:  # white noise short-circuit (also avoids m=2 edge cases)
        return gen.normal(0.0, sigma, size=n)

    gamma = fgn_autocovariance(h, n, sigma=sigma)
    # First row of the circulant: gamma(0..n), then gamma(n-1..1) reflected.
    row = np.concatenate([gamma, gamma[-2:0:-1]])
    eigenvalues = np.fft.rfft(row).real
    # Round tiny negative eigenvalues (floating point) up to zero.
    tol = -1e-9 * eigenvalues.max()
    if eigenvalues.min() < tol:
        raise RuntimeError(
            "circulant embedding produced significantly negative eigenvalues; "
            "this should be impossible for fGn"
        )
    np.clip(eigenvalues, 0.0, None, out=eigenvalues)

    m = row.size  # == 2n - 2 when n >= 2
    # Complex Gaussian spectrum with Hermitian symmetry handled by irfft.
    half = eigenvalues.size
    real = gen.standard_normal(half)
    imag = gen.standard_normal(half)
    spectrum = np.empty(half, dtype=np.complex128)
    spectrum.real = real
    spectrum.imag = imag
    # Endpoints of the real FFT must be purely real with doubled variance.
    spectrum[0] = real[0] * np.sqrt(2.0)
    spectrum[-1] = real[-1] * np.sqrt(2.0)
    weighted = spectrum * np.sqrt(eigenvalues * m / 2.0)
    sample = np.fft.irfft(weighted, m)[:n]
    return sample


def fbm(
    n: int,
    hurst: float,
    *,
    sigma: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Generate a fractional Brownian motion path of length ``n``.

    The path starts at 0 and has stationary fGn increments; ``fbm(n, 0.5)``
    is a standard random walk (discrete Brownian motion).

    Parameters
    ----------
    n, hurst, sigma, rng:
        As in :func:`fgn`.

    Returns
    -------
    numpy.ndarray
        Array of ``n`` floats, ``result[0] == first increment``.
    """
    return np.cumsum(fgn(n, hurst, sigma=sigma, rng=rng))
