"""Input validation helpers shared by the analysis modules."""

from __future__ import annotations

import numpy as np


def as_series(x, *, min_length: int = 1, name: str = "series") -> np.ndarray:
    """Coerce ``x`` to a 1-D float64 array and validate it.

    Parameters
    ----------
    x:
        Any 1-D array-like of real numbers.
    min_length:
        Minimum number of samples required.
    name:
        Name used in error messages.

    Returns
    -------
    numpy.ndarray
        A contiguous float64 view or copy of ``x``.

    Raises
    ------
    ValueError
        If ``x`` is not 1-D, is too short, or contains NaN/inf.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size < min_length:
        raise ValueError(
            f"{name} needs at least {min_length} samples, got {arr.size}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return np.ascontiguousarray(arr)


def positive_int(value: int, *, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue
