"""Detrended fluctuation analysis (DFA) — a trend-robust Hurst estimator.

The paper's pox plots (R/S) and variance-time analysis both assume the
series is stationary; a diurnal trend (which our workload deliberately
has) inflates their estimates.  DFA, introduced by Peng et al. for DNA
sequences and widely used on load traces since, detrends each window
before measuring fluctuations:

1. integrate the centered series, ``y_t = sum_{i<=t} (x_i - mean)``;
2. split ``y`` into windows of length ``s``; in each window, subtract the
   least-squares line (order-1 DFA);
3. the fluctuation ``F(s)`` is the RMS of the residuals;
4. ``F(s) ~ s**alpha`` with ``alpha = H`` for fractional Gaussian noise.

Provided as the fourth Hurst estimator and used by the extension tests to
cross-check Table 4's R/S column.
"""

from __future__ import annotations

import numpy as np

from repro.analysis._validate import as_series, positive_int
from repro.analysis.hurst import HurstEstimate

__all__ = ["dfa_fluctuations", "hurst_dfa"]


def dfa_fluctuations(x, scales) -> np.ndarray:
    """RMS detrended fluctuation ``F(s)`` for each window scale ``s``.

    Parameters
    ----------
    x:
        1-D series.
    scales:
        Iterable of window lengths (each >= 4 and <= len(x) // 2).

    Returns
    -------
    numpy.ndarray
        ``F(s)`` per scale, same order as ``scales``.
    """
    arr = as_series(x, min_length=16, name="x")
    profile = np.cumsum(arr - arr.mean())
    n = profile.size
    out = []
    for s in scales:
        s = positive_int(s, name="scale")
        if s < 4 or s > n // 2:
            raise ValueError(f"scale {s} out of range [4, {n // 2}]")
        windows = n // s
        segments = profile[: windows * s].reshape(windows, s)
        # Vectorized least-squares line removal per window.
        t = np.arange(s, dtype=np.float64)
        t_mean = t.mean()
        t_center = t - t_mean
        denom = float(np.dot(t_center, t_center))
        seg_means = segments.mean(axis=1, keepdims=True)
        slopes = (segments @ t_center)[:, None] / denom
        residuals = segments - seg_means - slopes * t_center
        out.append(float(np.sqrt(np.mean(residuals**2))))
    return np.asarray(out)


def hurst_dfa(x, *, scales=None) -> HurstEstimate:
    """DFA(1) Hurst estimate: slope of ``log F(s)`` vs ``log s``.

    Parameters
    ----------
    x:
        1-D series, at least 128 samples.
    scales:
        Window lengths to fit over; default: dyadic from 8 up to
        ``len(x) // 4``.

    Returns
    -------
    HurstEstimate
        ``detail["scales"]`` and ``detail["fluctuations"]`` carry the fit
        inputs for plotting.
    """
    arr = as_series(x, min_length=128, name="x")
    if scales is None:
        scales = []
        s = 8
        while s <= arr.size // 4:
            scales.append(s)
            s *= 2
    scales = [positive_int(s, name="scale") for s in scales]
    if len(scales) < 3:
        raise ValueError("DFA needs at least three scales to fit")
    fluct = dfa_fluctuations(arr, scales)
    if np.any(fluct <= 0.0):
        raise ValueError("degenerate (zero) fluctuations; series too regular")
    slope = float(np.polyfit(np.log10(scales), np.log10(fluct), 1)[0])
    return HurstEstimate(
        value=slope,
        method="dfa",
        n=arr.size,
        detail={"scales": np.asarray(scales), "fluctuations": fluct},
    )
