"""Rescaled adjusted range (R/S) analysis and pox plots (paper Figure 3).

For observations ``x_1..x_d`` with sample mean ``m`` and sample standard
deviation ``s``, define the centered partial sums ``W_j = sum_{i<=j} x_i -
j*m``.  The rescaled adjusted range statistic is

.. math::

    R/S(d) = \\frac{\\max_j W_j - \\min_j W_j}{s}.

For a long-range dependent series, ``E[R/S(d)] ~ c * d**H`` as d grows, so a
log-log scatter of per-segment R/S values against segment length ``d`` (a
*pox plot*) has slope H.  The paper partitions each trace into
non-overlapping segments of dyadic lengths, plots every segment's R/S value,
and fits a least-squares line through the per-length means; the fitted slope
is the Hurst estimate reported in Table 4 (0.69-0.82 across hosts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis._validate import as_series, positive_int

__all__ = ["rs_statistic", "pox_plot_data", "PoxPlotData"]

#: Smallest segment length for which R/S is statistically meaningful.
MIN_SEGMENT = 8


def rs_statistic(x) -> float:
    """R/S statistic of a single segment.

    Parameters
    ----------
    x:
        1-D segment with at least 2 samples and non-zero variance.

    Returns
    -------
    float
        The rescaled adjusted range (non-negative; 0 only for pathological
        segments).

    Raises
    ------
    ValueError
        If the segment is constant (S = 0) or invalid.
    """
    arr = as_series(x, min_length=2, name="segment")
    mean = arr.mean()
    # Population (biased) std to match Mandelbrot & Taqqu's definition.
    std = arr.std()
    if std == 0.0:
        raise ValueError("R/S is undefined for a constant segment")
    walk = np.cumsum(arr - mean)
    # W_0 = 0 is part of the adjusted range by convention.
    high = max(walk.max(), 0.0)
    low = min(walk.min(), 0.0)
    return float((high - low) / std)


@dataclass(frozen=True)
class PoxPlotData:
    """Scatter + regression data backing one pox plot.

    Attributes
    ----------
    log10_d:
        ``log10`` of the segment length for every scatter point.
    log10_rs:
        ``log10`` of the corresponding R/S value.
    segment_lengths:
        The distinct segment lengths used (ascending).
    mean_log10_rs:
        Mean of ``log10_rs`` per distinct segment length -- the points the
        regression line is fitted through, exactly as in the paper.
    hurst:
        Slope of the least-squares line (the Hurst estimate).
    intercept:
        Intercept of the least-squares line.
    """

    log10_d: np.ndarray
    log10_rs: np.ndarray
    segment_lengths: np.ndarray
    mean_log10_rs: np.ndarray
    hurst: float
    intercept: float
    _immutable: bool = field(default=True, repr=False)

    def regression_line(self, log10_d: np.ndarray) -> np.ndarray:
        """Evaluate the fitted line at the given ``log10(d)`` abscissae."""
        return self.hurst * np.asarray(log10_d, dtype=np.float64) + self.intercept


def _dyadic_lengths(n: int, min_segment: int) -> np.ndarray:
    """Dyadic segment lengths ``min_segment * 2**k`` not exceeding ``n``."""
    lengths = []
    d = min_segment
    while d <= n:
        lengths.append(d)
        d *= 2
    return np.asarray(lengths, dtype=np.int64)


def pox_plot_data(
    x,
    *,
    min_segment: int = MIN_SEGMENT,
    max_segments_per_length: int | None = None,
) -> PoxPlotData:
    """Compute the pox-plot scatter and its regression for a series.

    The series of length ``N`` is partitioned, for each dyadic segment
    length ``d``, into ``floor(N / d)`` non-overlapping segments; each
    segment contributes one ``(log10 d, log10 R/S(d))`` point.  Constant
    segments (zero variance, common in idle-machine traces) are skipped.
    The Hurst estimate is the slope of the least-squares fit through the
    per-length *mean* log R/S values, matching the solid line in Figure 3.

    Parameters
    ----------
    x:
        1-D series with at least ``4 * min_segment`` samples.
    min_segment:
        Smallest segment length (default 8).
    max_segments_per_length:
        Optional cap on segments evaluated per length (keeps huge traces
        cheap); segments are then sampled evenly across the trace.

    Returns
    -------
    PoxPlotData

    Raises
    ------
    ValueError
        If fewer than two distinct segment lengths yield valid R/S values.
    """
    arr = as_series(x, min_length=4 * min_segment, name="x")
    min_segment = positive_int(min_segment, name="min_segment")
    n = arr.size

    xs: list[float] = []
    ys: list[float] = []
    lengths_out: list[int] = []
    means_out: list[float] = []

    for d in _dyadic_lengths(n, min_segment):
        count = n // d
        segments = arr[: count * d].reshape(count, d)
        if max_segments_per_length is not None and count > max_segments_per_length:
            indices = np.linspace(0, count - 1, max_segments_per_length).astype(int)
            segments = segments[indices]
        # All segments of this length at once: row-wise R/S.  Constant
        # segments (zero variance, common in idle-machine traces) are
        # masked out, matching rs_statistic's refusal to divide by S = 0.
        means = segments.mean(axis=1)
        stds = segments.std(axis=1)
        valid = stds != 0.0
        if not np.any(valid):
            continue
        segments = segments[valid]
        walk = np.cumsum(segments - means[valid, None], axis=1)
        # W_0 = 0 is part of the adjusted range by convention.
        high = np.maximum(walk.max(axis=1), 0.0)
        low = np.minimum(walk.min(axis=1), 0.0)
        logs = np.log10((high - low) / stds[valid])
        xs.extend([np.log10(d)] * logs.size)
        ys.extend(logs.tolist())
        lengths_out.append(int(d))
        means_out.append(float(logs.mean()))

    if len(lengths_out) < 2:
        raise ValueError(
            "pox plot needs valid R/S values at >= 2 distinct segment lengths"
        )

    mean_x = np.log10(np.asarray(lengths_out, dtype=np.float64))
    mean_y = np.asarray(means_out, dtype=np.float64)
    slope, intercept = np.polyfit(mean_x, mean_y, 1)

    return PoxPlotData(
        log10_d=np.asarray(xs),
        log10_rs=np.asarray(ys),
        segment_lengths=np.asarray(lengths_out, dtype=np.int64),
        mean_log10_rs=mean_y,
        hurst=float(slope),
        intercept=float(intercept),
    )
