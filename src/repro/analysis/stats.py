"""Summary statistics and smoothing primitives shared across the library.

These are small, heavily reused building blocks: the exponential smoother is
the same recurrence the simulated kernel uses for Unix load average, and the
running mean backs several NWS forecasters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis._validate import as_series

__all__ = ["SeriesSummary", "summarize", "exponential_smooth", "running_mean"]


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-plus summary of a series.

    Attributes mirror what the paper reports about its traces: mean,
    variance (population, ddof=0, to match Table 4), min/max, median, and
    the count.
    """

    n: int
    mean: float
    variance: float
    std: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4f} var={self.variance:.6f} "
            f"min={self.minimum:.4f} med={self.median:.4f} max={self.maximum:.4f}"
        )


def summarize(x) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` for ``x``.

    Parameters
    ----------
    x:
        1-D series with at least one sample.
    """
    arr = as_series(x, min_length=1, name="x")
    return SeriesSummary(
        n=arr.size,
        mean=float(arr.mean()),
        variance=float(arr.var()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )


def exponential_smooth(x, alpha: float, *, initial: float | None = None) -> np.ndarray:
    """First-order exponential smoothing ``s_t = alpha*x_t + (1-alpha)*s_{t-1}``.

    This is the recurrence behind the Unix one-minute load average (with
    ``alpha = 1 - exp(-interval/60)``) and the NWS exponential-smoothing
    forecasters.

    Parameters
    ----------
    x:
        1-D series.
    alpha:
        Smoothing gain in (0, 1].
    initial:
        Seed value ``s_0``; defaults to ``x[0]``.

    Returns
    -------
    numpy.ndarray
        The smoothed series, same length as ``x``.
    """
    arr = as_series(x, min_length=1, name="x")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out = np.empty_like(arr)
    state = arr[0] if initial is None else float(initial)
    # scipy.signal.lfilter would vectorize this, but an explicit loop keeps
    # the recurrence obvious and this helper is never on a hot path.
    beta = 1.0 - alpha
    for i, value in enumerate(arr):
        state = alpha * value + beta * state
        out[i] = state
    return out


def running_mean(x) -> np.ndarray:
    """Cumulative (running) mean of ``x``: ``out[t] = mean(x[:t+1])``.

    Parameters
    ----------
    x:
        1-D series.
    """
    arr = as_series(x, min_length=1, name="x")
    return np.cumsum(arr) / np.arange(1, arr.size + 1)
