"""Sample autocorrelation functions (paper Figure 2).

The paper plots the first 360 sample autocorrelations of each 10-second CPU
availability series and observes a slow, hyperbolic-looking decay -- the
signature of long-range dependence.  This module computes the biased sample
ACF (the standard estimator used in that literature), white-noise confidence
bands, and the integrated autocorrelation time used by the tests to assert
"slow decay" quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.analysis._validate import as_series, positive_int

__all__ = ["acf", "acf_confidence_band", "integrated_acf_time"]


def acf(x, nlags: int = 360, *, fft: bool = True) -> np.ndarray:
    """Sample autocorrelation function of ``x`` for lags ``0..nlags``.

    Uses the biased estimator

    .. math::

        \\hat\\rho(k) = \\frac{\\sum_{t=1}^{n-k} (x_t-\\bar x)(x_{t+k}-\\bar x)}
                            {\\sum_{t=1}^{n} (x_t-\\bar x)^2}

    which guarantees a positive semi-definite autocorrelation sequence and
    matches what R/S-era self-similarity studies plot.

    Parameters
    ----------
    x:
        1-D series, length at least 2.
    nlags:
        Largest lag to return.  Lags beyond ``len(x) - 1`` are reported as
        0.0 (there is no data to estimate them).
    fft:
        If true (default), compute via FFT in O(n log n); otherwise use the
        direct O(n * nlags) sum.  Both return identical values to within
        floating-point rounding.

    Returns
    -------
    numpy.ndarray
        Array of length ``nlags + 1`` with ``result[0] == 1.0``.

    Raises
    ------
    ValueError
        If the series is constant (ACF undefined) or invalid.
    """
    arr = as_series(x, min_length=2, name="x")
    nlags = positive_int(nlags, name="nlags")
    n = arr.size
    centered = arr - arr.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        raise ValueError("ACF is undefined for a constant series")

    max_lag = min(nlags, n - 1)
    if fft:
        # Zero-pad to at least 2n to avoid circular wrap-around.
        nfft = 1 << int(np.ceil(np.log2(2 * n)))
        spectrum = np.fft.rfft(centered, nfft)
        autocov = np.fft.irfft(spectrum * np.conj(spectrum), nfft)[: max_lag + 1]
        rho = autocov / denom
    else:
        rho = np.empty(max_lag + 1)
        for k in range(max_lag + 1):
            rho[k] = np.dot(centered[: n - k], centered[k:]) / denom

    out = np.zeros(nlags + 1)
    out[: max_lag + 1] = rho
    out[0] = 1.0
    return out


def acf_confidence_band(n: int, *, level: float = 0.95) -> float:
    """Half-width of the white-noise confidence band for a sample ACF.

    Under the null hypothesis that the series is i.i.d., the sample
    autocorrelations at nonzero lags are asymptotically N(0, 1/n); the band
    is ``z * n**-0.5``.  A long-range dependent series (like the paper's CPU
    traces) stays far above this band for hundreds of lags.

    Parameters
    ----------
    n:
        Series length used to compute the ACF.
    level:
        Two-sided confidence level in (0, 1).

    Returns
    -------
    float
        The band half-width.
    """
    n = positive_int(n, name="n")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    # Inverse normal CDF via scipy would be overkill for the two common
    # levels; use the rational approximation from Acklam, accurate to ~1e-9.
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + level / 2.0))
    return z / np.sqrt(n)


def integrated_acf_time(x, *, max_lag: int | None = None) -> float:
    """Integrated autocorrelation time ``1 + 2 * sum_k rho(k)``.

    The sum is truncated at the first non-positive autocorrelation
    (Geyer's initial positive sequence rule, simplified), which is a robust
    convention for monotone-decaying ACFs.  For white noise this is ~1; for
    the paper's availability traces it is in the hundreds, quantifying "events
    hours apart are correlated".

    Parameters
    ----------
    x:
        1-D series.
    max_lag:
        Optional hard cap on the truncation lag (default: ``len(x) // 4``).

    Returns
    -------
    float
        The integrated autocorrelation time (>= 1 for positively correlated
        series).
    """
    arr = as_series(x, min_length=4, name="x")
    cap = arr.size // 4 if max_lag is None else positive_int(max_lag, name="max_lag")
    rho = acf(arr, nlags=cap)
    positive = rho[1:]
    cutoff = np.argmax(positive <= 0.0) if np.any(positive <= 0.0) else positive.size
    return float(1.0 + 2.0 * positive[:cutoff].sum())
