"""Trace containers and persistence.

The NWS stored measurement histories as flat trace files; this subpackage
provides the equivalent: a timestamped series container, CSV/JSON-lines
persistence, and resampling onto regular grids.
"""

from repro.trace.io import load_trace_csv, load_trace_jsonl, save_trace_csv, save_trace_jsonl
from repro.trace.resample import resample_mean, resample_nearest
from repro.trace.series import TraceSeries

__all__ = [
    "TraceSeries",
    "load_trace_csv",
    "load_trace_jsonl",
    "resample_mean",
    "resample_nearest",
    "save_trace_csv",
    "save_trace_jsonl",
]
