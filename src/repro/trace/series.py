"""TraceSeries: an immutable timestamped measurement series."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TraceSeries"]


@dataclass(frozen=True)
class TraceSeries:
    """A timestamped series of availability measurements.

    Attributes
    ----------
    host:
        Host the series was gathered on.
    method:
        Measurement method (``load_average`` / ``vmstat`` / ``nws_hybrid``
        / ``observed`` for ground truth).
    times:
        Monotonically increasing timestamps (seconds).
    values:
        Availability fractions, same length as ``times``.
    """

    host: str
    method: str
    times: np.ndarray
    values: np.ndarray
    _frozen: bool = field(default=True, repr=False)

    def __post_init__(self):
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        if times.ndim != 1 or values.ndim != 1:
            raise ValueError("times and values must be 1-D")
        if times.shape != values.shape:
            raise ValueError(
                f"times and values lengths differ: {times.size} vs {values.size}"
            )
        if times.size > 1 and not np.all(np.diff(times) > 0):
            raise ValueError("times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def duration(self) -> float:
        """Seconds spanned (0 for a series of fewer than two samples)."""
        return float(self.times[-1] - self.times[0]) if len(self) > 1 else 0.0

    @property
    def period(self) -> float:
        """Median sampling period (NaN for fewer than two samples)."""
        if len(self) < 2:
            return float("nan")
        return float(np.median(np.diff(self.times)))

    def window(self, start: float, stop: float) -> "TraceSeries":
        """Sub-series with ``start <= t < stop``."""
        if stop <= start:
            raise ValueError(f"need start < stop, got [{start}, {stop})")
        keep = (self.times >= start) & (self.times < stop)
        return TraceSeries(self.host, self.method, self.times[keep], self.values[keep])

    def aggregate(self, m: int) -> "TraceSeries":
        """Non-overlapping block means (timestamps at each block's end)."""
        from repro.analysis.aggregate import aggregate_series

        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        blocks = len(self) // m
        if blocks == 0:
            raise ValueError(f"series too short to aggregate by {m}")
        values = aggregate_series(self.values, m)
        times = self.times[: blocks * m].reshape(blocks, m)[:, -1]
        return TraceSeries(self.host, f"{self.method}~{m}", times, values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TraceSeries {self.host}/{self.method} n={len(self)} "
            f"span={self.duration:.0f}s>"
        )
