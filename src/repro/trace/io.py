"""Trace persistence: CSV and JSON-lines round-trips."""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.trace.series import TraceSeries

__all__ = [
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_jsonl",
    "load_trace_jsonl",
]


def save_trace_csv(series: TraceSeries, path) -> None:
    """Write ``series`` as a CSV file with a metadata header row.

    Layout: a comment line ``# host=<h> method=<m>``, a header row, then
    ``time,value`` rows with full float precision.
    """
    path = Path(path)
    with path.open("w", newline="") as f:
        f.write(f"# host={series.host} method={series.method}\n")
        writer = csv.writer(f)
        writer.writerow(["time", "value"])
        for t, v in zip(series.times, series.values):
            writer.writerow([repr(float(t)), repr(float(v))])


def load_trace_csv(path) -> TraceSeries:
    """Read a trace written by :func:`save_trace_csv`."""
    path = Path(path)
    host = method = "unknown"
    times: list[float] = []
    values: list[float] = []
    with path.open() as f:
        first = f.readline()
        if first.startswith("#"):
            for token in first[1:].split():
                key, _, val = token.partition("=")
                if key == "host":
                    host = val
                elif key == "method":
                    method = val
        else:
            raise ValueError(f"{path} is missing the metadata header line")
        reader = csv.reader(f)
        header = next(reader, None)
        if header != ["time", "value"]:
            raise ValueError(f"{path} has unexpected columns {header}")
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            values.append(float(row[1]))
    return TraceSeries(host, method, np.asarray(times), np.asarray(values))


def save_trace_jsonl(series: TraceSeries, path) -> None:
    """Write ``series`` as JSON lines: one metadata object, then samples."""
    path = Path(path)
    with path.open("w") as f:
        f.write(json.dumps({"host": series.host, "method": series.method}) + "\n")
        for t, v in zip(series.times, series.values):
            f.write(json.dumps({"t": float(t), "v": float(v)}) + "\n")


def load_trace_jsonl(path) -> TraceSeries:
    """Read a trace written by :func:`save_trace_jsonl`."""
    path = Path(path)
    times: list[float] = []
    values: list[float] = []
    with path.open() as f:
        meta = json.loads(f.readline())
        for line in f:
            line = line.strip()
            if not line:
                continue
            sample = json.loads(line)
            times.append(sample["t"])
            values.append(sample["v"])
    return TraceSeries(
        meta.get("host", "unknown"),
        meta.get("method", "unknown"),
        np.asarray(times),
        np.asarray(values),
    )
