"""Resampling irregular traces onto regular grids.

Live measurements (and simulated ones, after warm-up trimming) are not
always on a perfect grid; the analysis (ACF, R/S) assumes equal spacing.
"""

from __future__ import annotations

import numpy as np

from repro.trace.series import TraceSeries

__all__ = ["resample_nearest", "resample_mean"]


def _grid(series: TraceSeries, period: float) -> np.ndarray:
    if period <= 0.0:
        raise ValueError(f"period must be positive, got {period}")
    if len(series) < 2:
        raise ValueError("need at least two samples to resample")
    start, stop = series.times[0], series.times[-1]
    n = int(np.floor((stop - start) / period)) + 1
    return start + period * np.arange(n)


def resample_nearest(series: TraceSeries, period: float) -> TraceSeries:
    """Sample-and-hold resampling onto a regular grid.

    Each grid instant takes the most recent measurement at or before it --
    semantically right for sensors, whose reading is "the current state".
    """
    grid = _grid(series, period)
    idx = np.searchsorted(series.times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(series) - 1)
    return TraceSeries(series.host, series.method, grid, series.values[idx])


def resample_mean(series: TraceSeries, period: float) -> TraceSeries:
    """Mean-of-bin resampling onto a regular grid.

    Empty bins inherit the previous bin's value (sample-and-hold), so the
    output has no gaps.
    """
    grid = _grid(series, period)
    # Bin edges are [g, g + period); the final grid point gets the tail.
    bins = np.searchsorted(grid, series.times, side="right") - 1
    bins = np.clip(bins, 0, grid.size - 1)
    sums = np.zeros(grid.size)
    counts = np.zeros(grid.size)
    np.add.at(sums, bins, series.values)
    np.add.at(counts, bins, 1.0)
    values = np.empty(grid.size)
    last = series.values[0]
    for i in range(grid.size):
        if counts[i] > 0:
            last = sums[i] / counts[i]
        values[i] = last
    return TraceSeries(series.host, series.method, grid, values)
