"""Runtime contracts: ensure_fraction / checked_fraction and their wiring."""

from __future__ import annotations

import math

import pytest

from repro.core.predictor import NWSPredictor
from repro.lint.contracts import (
    ENV_VAR,
    ContractError,
    checked_fraction,
    contracts_enabled,
    ensure_fraction,
)


class TestEnsureFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1e-12])
    def test_accepts_fractions(self, value):
        assert ensure_fraction(value) == value

    @pytest.mark.parametrize(
        "value", [-0.01, 1.01, 100.0, math.nan, math.inf, -math.inf]
    )
    def test_rejects_non_fractions(self, value):
        with pytest.raises(ContractError):
            ensure_fraction(value)

    def test_contract_error_is_value_error(self):
        assert issubclass(ContractError, ValueError)

    def test_name_appears_in_message(self):
        with pytest.raises(ContractError, match="vmstat reading"):
            ensure_fraction(2.0, name="vmstat reading")


class TestKillSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert contracts_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "FALSE", "no"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert not contracts_enabled()
        assert ensure_fraction(42.0) == 42.0  # passes through unchecked

    def test_other_values_keep_contracts_on(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        with pytest.raises(ContractError):
            ensure_fraction(42.0)


class TestCheckedFraction:
    def test_validates_return_value(self):
        @checked_fraction
        def broken_sensor():
            return 1.5

        with pytest.raises(ContractError, match="broken_sensor"):
            broken_sensor()

    def test_passes_valid_results_through(self):
        @checked_fraction
        def sensor(x):
            return x / 2.0

        assert sensor(1.0) == 0.5

    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")

        @checked_fraction
        def broken_sensor():
            return -3.0

        assert broken_sensor() == -3.0


class TestPredictorWiring:
    def test_observe_rejects_out_of_range(self):
        predictor = NWSPredictor()
        with pytest.raises(ValueError):
            predictor.observe(1.5)

    def test_observe_rejects_nan(self):
        predictor = NWSPredictor()
        with pytest.raises(ValueError):
            predictor.observe(math.nan)

    def test_observe_accepts_fraction(self):
        predictor = NWSPredictor()
        predictor.observe(0.75)
        assert predictor.forecast_next() == pytest.approx(0.75)
