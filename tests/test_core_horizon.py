"""Tests for repro.core.horizon (multi-horizon forecasting)."""

import numpy as np
import pytest

from repro.analysis.fgn import fgn
from repro.core.horizon import HorizonError, future_averages, horizon_error_profile


class TestFutureAverages:
    def test_block_means(self):
        out = future_averages([1.0, 3.0, 5.0, 7.0], 2)
        np.testing.assert_allclose(out, [2.0, 6.0])


class TestHorizonProfile:
    def test_profile_shape(self):
        values = np.clip(0.6 + 0.1 * fgn(3000, 0.8, rng=0), 0, 1)
        profile = horizon_error_profile(values, horizons=(1, 6, 30))
        assert [h.horizon for h in profile] == [1, 6, 30]
        for entry in profile:
            assert entry.direct_mae >= 0.0
            assert entry.n >= 8

    def test_undersized_horizons_skipped(self):
        values = np.clip(0.5 + 0.05 * fgn(200, 0.7, rng=1), 0, 1)
        profile = horizon_error_profile(values, horizons=(1, 100))
        assert [h.horizon for h in profile] == [1]

    def test_error_shrinks_with_aggregation_on_lrd(self):
        # For an LRD series, block averages are smoother, so longer-horizon
        # (aggregated) prediction has smaller absolute error.
        values = np.clip(0.6 + 0.1 * fgn(6000, 0.85, rng=2), 0, 1)
        profile = horizon_error_profile(values, horizons=(1, 30))
        assert profile[1].direct_mae < profile[0].direct_mae

    def test_direct_beats_persistence_on_average(self, thing2_run):
        values = thing2_run.values("load_average")
        profile = horizon_error_profile(values, horizons=(6, 30))
        mean_skill = float(np.mean([h.skill for h in profile]))
        assert mean_skill > -0.1  # at worst a whisker behind persistence

    def test_skill_property(self):
        entry = HorizonError(horizon=1, direct_mae=0.05, persistent_mae=0.1, n=10)
        assert entry.skill == pytest.approx(0.5)
        zero = HorizonError(horizon=1, direct_mae=0.0, persistent_mae=0.0, n=10)
        assert zero.skill == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            horizon_error_profile([0.5] * 8)
        with pytest.raises(ValueError):
            horizon_error_profile(np.full(100, 0.5), horizons=(50,))
