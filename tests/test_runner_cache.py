"""Tests for the content-addressed disk cache and its keys."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.testbed import TestbedConfig, simulate_host
from repro.runner import ResultCache, canonical_config, config_digest

TINY = TestbedConfig(duration=1800.0, seed=31)


@pytest.fixture(scope="module")
def tiny_run():
    return simulate_host("thing1", TINY)


class TestKeys:
    def test_digest_is_hex_sha256(self):
        digest = config_digest("thing1", TINY)
        assert len(digest) == 64
        int(digest, 16)

    def test_digest_stable_across_field_ordering(self):
        a = TestbedConfig(duration=1800.0, seed=31, warmup=600.0)
        b = TestbedConfig(warmup=600.0, seed=31, duration=1800.0)
        assert config_digest("thing1", a) == config_digest("thing1", b)

    def test_digest_varies_with_inputs(self):
        base = config_digest("thing1", TINY)
        assert config_digest("thing2", TINY) != base
        assert config_digest("thing1", TINY.derive(seed=32)) != base
        assert config_digest("thing1", TINY, code_version="0.0.0") != base

    def test_canonical_config_keys_sorted(self):
        keys = list(canonical_config(TINY))
        assert keys == sorted(keys)
        # Round-trips through JSON without custom encoders.
        json.dumps(canonical_config(TINY))

    def test_auto_dispatch_keeps_engine_out_of_the_key(self):
        # Under "auto" the engines are byte-identical, so a cache warmed
        # on a batch-capable machine must stay warm where the host falls
        # back -- and auto digests must match pre-sim_engine releases.
        assert config_digest("thing1", TINY) == config_digest(
            "thing1", TINY.derive(sim_engine="auto")
        )

    def test_forced_engines_key_separately(self):
        auto = config_digest("thing1", TINY)
        event = config_digest("thing1", TINY.derive(sim_engine="event"))
        batch = config_digest("thing1", TINY.derive(sim_engine="batch"))
        assert len({auto, event, batch}) == 3

    def test_forced_batch_folds_in_kernel_version(self, monkeypatch):
        import repro.sim.batch as batch_mod

        pinned = TINY.derive(sim_engine="batch")
        before = config_digest("thing1", pinned)
        monkeypatch.setattr(
            batch_mod, "BATCH_KERNEL_VERSION", batch_mod.BATCH_KERNEL_VERSION + 1
        )
        assert config_digest("thing1", pinned) != before
        # A numeric-core revision must not disturb auto/event entries.
        assert config_digest("thing1", TINY) == config_digest("thing1", TINY)
        assert config_digest(
            "thing1", TINY.derive(sim_engine="event")
        ) == config_digest("thing1", TINY.derive(sim_engine="event"))


class TestRoundTrip:
    def test_store_then_load_reproduces_run(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path)
        digest = config_digest(tiny_run.host, tiny_run.config)
        cache.store(digest, tiny_run)

        # A second ResultCache instance models a fresh interpreter: no
        # shared state except the files on disk.
        loaded, outcome = ResultCache(tmp_path).lookup(digest)
        assert outcome == "hit"
        assert loaded.host == tiny_run.host
        assert loaded.config == tiny_run.config
        for method in tiny_run.series:
            np.testing.assert_array_equal(
                loaded.series[method].times, tiny_run.series[method].times
            )
            np.testing.assert_array_equal(
                loaded.series[method].values, tiny_run.series[method].values
            )
            np.testing.assert_array_equal(
                loaded.premeasurements(method), tiny_run.premeasurements(method)
            )
        np.testing.assert_array_equal(loaded.observed(), tiny_run.observed())

    def test_miss_on_unknown_digest(self, tmp_path):
        run, outcome = ResultCache(tmp_path).lookup("ab" * 32)
        assert run is None
        assert outcome == "miss"

    def test_store_is_idempotent(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path)
        digest = config_digest(tiny_run.host, tiny_run.config)
        path1 = cache.store(digest, tiny_run)
        path2 = cache.store(digest, tiny_run)
        assert path1 == path2
        assert len(cache) == 1

    def test_no_stray_tmp_files_after_store(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path)
        cache.store(config_digest(tiny_run.host, tiny_run.config), tiny_run)
        strays = [p for p in tmp_path.rglob("*") if p.is_file() and p.suffix != ".npz"]
        assert strays == []


class TestCorruptionRecovery:
    def _stored(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path)
        digest = config_digest(tiny_run.host, tiny_run.config)
        path = cache.store(digest, tiny_run)
        return cache, digest, path

    def test_garbage_entry_deleted_and_reported(self, tmp_path, tiny_run):
        cache, digest, path = self._stored(tmp_path, tiny_run)
        path.write_bytes(b"not an npz at all")
        run, outcome = cache.lookup(digest)
        assert run is None
        assert outcome == "corrupt"
        assert not path.exists()

    def test_truncated_entry_recovered(self, tmp_path, tiny_run):
        cache, digest, path = self._stored(tmp_path, tiny_run)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        run, outcome = cache.lookup(digest)
        assert run is None
        assert outcome == "corrupt"
        assert not path.exists()

    def test_format_drift_treated_as_corrupt(self, tmp_path, tiny_run, monkeypatch):
        cache, digest, path = self._stored(tmp_path, tiny_run)
        monkeypatch.setattr("repro.runner.cache.CACHE_FORMAT", 999)
        run, outcome = cache.lookup(digest)
        assert run is None
        assert outcome == "corrupt"

    def test_runner_resimulates_after_corruption(self, tmp_path, tiny_run):
        from repro.runner import Runner

        cache, digest, path = self._stored(tmp_path, tiny_run)
        path.write_bytes(b"garbage")
        runner = Runner(cache=cache)
        run = runner.run("thing1", TINY)
        assert runner.stats.corrupt == 1
        assert runner.stats.misses == 1
        np.testing.assert_array_equal(
            run.values("load_average"), tiny_run.values("load_average")
        )
        # ... and the re-simulated result replaced the bad entry.
        assert cache.lookup(digest)[1] == "hit"


class TestHygiene:
    def test_clear_counts_entries(self, tmp_path, tiny_run):
        cache = ResultCache(tmp_path)
        cache.store(config_digest("thing1", TINY), tiny_run)
        cache.store(config_digest("thing1", TINY.derive(seed=99)), tiny_run)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_empty_root_is_zero(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").clear() == 0
