"""Crash-safe durability + overload resilience acceptance suite.

The tentpole guarantee under test: a forecast service killed at any
instant and restored from its state directory (snapshot + write-ahead
journal) answers ``query_all`` with forecasts **byte-identical** to an
uninterrupted run -- including after retention compaction has rewritten
journals.  Alongside it: admission control (HTTP 429 + ``Retry-After``),
drain-on-shutdown, request deadlines, and the unclean-shutdown counter.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.nws import (
    ForecastServer,
    NWSClient,
    RetentionPolicy,
    ServerOverloaded,
    ServiceCore,
)
from repro.nws.durable import (
    JournalWriter,
    atomic_replace_bytes,
    atomic_replace_json,
)
from repro.nws.service import (
    MANIFEST_NAME,
    request_deadline,
    set_request_deadline,
)
from repro.nws.wire import DEADLINE_HEADER, canonical, encode_report
from repro.obs import MetricsRegistry, installed


def http(url: str, body: dict | None = None, headers: dict | None = None):
    """(status, payload, response headers) for one raw HTTP exchange."""
    data = canonical(body) if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method="POST" if data is not None else "GET",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


def counter_value(registry, name: str, **labels) -> float:
    metric = registry.snapshot().get(name)
    assert metric is not None, f"{name} not in snapshot"
    for sample in metric["samples"]:
        if sample["labels"] == labels:
            return sample["value"]
    raise AssertionError(f"{name} has no sample with labels {labels}")


# ------------------------------------------------------------ primitives


class TestAtomicReplace:
    def test_replaces_whole_file(self, tmp_path):
        target = tmp_path / "state.bin"
        atomic_replace_bytes(target, b"one")
        atomic_replace_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        assert not (tmp_path / "state.bin.tmp").exists()

    def test_json_is_canonical_bytes(self, tmp_path):
        target = tmp_path / "state.json"
        atomic_replace_json(target, {"b": 1, "a": [1, 2]})
        assert target.read_bytes() == b'{"a":[1,2],"b":1}\n'


class TestJournalWriter:
    def test_write_through_by_default(self, tmp_path):
        journal = JournalWriter()
        path = tmp_path / "a.jsonl"
        journal.append(path, "x")
        assert path.read_text() == "x\n"
        assert journal.pending() == 0
        journal.close()

    def test_group_commit_buffers_until_threshold(self, tmp_path):
        journal = JournalWriter(flush_lines=3)
        path = tmp_path / "a.jsonl"
        journal.append(path, "1")
        journal.append(path, "2")
        assert not path.exists()
        assert journal.pending(path) == 2
        journal.append(path, "3")
        assert path.read_text() == "1\n2\n3\n"
        assert journal.pending(path) == 0
        journal.close()

    def test_flush_is_the_read_barrier(self, tmp_path):
        journal = JournalWriter(flush_lines=100)
        path = tmp_path / "a.jsonl"
        journal.append(path, "1")
        assert journal.flush(path) == 1
        assert path.read_text() == "1\n"
        journal.close()

    def test_invalidate_drops_pending_and_reopens_new_inode(self, tmp_path):
        journal = JournalWriter(flush_lines=100)
        path = tmp_path / "a.jsonl"
        journal.append(path, "old-1")
        journal.flush(path)
        journal.append(path, "old-2")  # pending at checkpoint time
        atomic_replace_bytes(path, b"checkpoint\n")
        journal.invalidate(path)
        journal.append(path, "new-1")
        journal.flush(path)
        # The pre-checkpoint pending line is gone and the new append
        # landed on the replacement inode, not the unlinked one.
        assert path.read_text() == "checkpoint\nnew-1\n"
        journal.close()

    def test_discard_loses_only_the_unflushed_tail(self, tmp_path):
        journal = JournalWriter(flush_lines=2)
        path = tmp_path / "a.jsonl"
        for line in ("1", "2", "3"):
            journal.append(path, line)
        journal.discard()  # what kill -9 would lose
        assert path.read_text() == "1\n2\n"

    def test_close_flushes(self, tmp_path):
        journal = JournalWriter(flush_lines=100)
        path = tmp_path / "a.jsonl"
        journal.append(path, "1")
        journal.close()
        assert path.read_text() == "1\n"

    def test_validation(self):
        with pytest.raises(ValueError, match="flush_lines"):
            JournalWriter(flush_lines=0)


# --------------------------------------------------- service-level restore


def _publish_sequence(n: int, series_count: int = 5):
    """A deterministic (series, time, value) publish schedule."""
    rng = np.random.default_rng(11)
    values = rng.random(n)
    return [
        (f"cpu.{i % series_count}", 10.0 * i, float(values[i])) for i in range(n)
    ]


_POLICY = RetentionPolicy(compact_above=100, keep_recent=20, period=50.0)


def _forecast_bytes(core: ServiceCore, tenant: str = "default") -> bytes:
    reports = core.query_all(tenant)
    return b"".join(
        canonical(encode_report(reports[name])) for name in sorted(reports)
    )


def _reference_bytes(ops, maintain_at) -> bytes:
    core = ServiceCore(("default",), retention=_POLICY)
    for i, (series, t, value) in enumerate(ops):
        core.publish("default", series, t, value)
        if i + 1 in maintain_at:
            core.maintain()
    core.maintain()
    return _forecast_bytes(core)


class TestKillRestartRecover:
    def test_restore_is_byte_identical_after_compaction(self, tmp_path):
        ops = _publish_sequence(600)
        maintain_at = {300}
        reference = _reference_bytes(ops, maintain_at)

        core = ServiceCore(("default",), directory=tmp_path, retention=_POLICY)
        core.register("default", "sensor.a", "sensor", {"host": "a"}, ttl=1e12)
        for i, (series, t, value) in enumerate(ops[:340]):
            core.publish("default", series, t, value)
            if i + 1 in maintain_at:
                core.maintain()
        # kill -9: drop the core without close()/sync(); write-through
        # journaling (flush_lines=1) means nothing was buffered.
        del core

        restored = ServiceCore.restore(tmp_path, retention=_POLICY)
        assert len(restored.lookup("default", "sensor")) == 1
        for series, t, value in ops[340:]:
            restored.publish("default", series, t, value)
        restored.maintain()
        assert _forecast_bytes(restored) == reference
        restored.close()

    def test_group_commit_crash_loses_only_the_tail(self, tmp_path):
        ops = _publish_sequence(600)
        reference = _reference_bytes(ops, {300})

        core = ServiceCore(
            ("default",),
            directory=tmp_path,
            retention=_POLICY,
            journal_flush_lines=4,
        )
        for i, (series, t, value) in enumerate(ops[:342]):
            core.publish("default", series, t, value)
            if i + 1 == 300:
                core.maintain()  # also a durability heartbeat (sync)
        # Crash with 2 appends still buffered: the journal holds exactly
        # the flushed prefix (340 = the last group-commit boundary).
        state = core.tenant("default")
        state.memory.discard_unflushed()
        del core

        restored = ServiceCore.restore(
            tmp_path, retention=_POLICY, journal_flush_lines=4
        )
        total = sum(
            restored.tenant("default").memory.count(s)
            for s in restored.series_names("default")
        )
        # 300 publishes compacted by maintain() down to <= the policy's
        # retained set, plus the 40 flushed post-compaction publishes --
        # and NOT the 2 unflushed ones.
        expected = ServiceCore(("default",), retention=_POLICY)
        for series, t, value in ops[:300]:
            expected.publish("default", series, t, value)
        expected.maintain()
        for series, t, value in ops[300:340]:
            expected.publish("default", series, t, value)
        assert total == sum(
            expected.tenant("default").memory.count(s)
            for s in expected.series_names("default")
        )
        # Republishing from the surviving prefix converges byte-identically.
        for series, t, value in ops[340:]:
            restored.publish("default", series, t, value)
        restored.maintain()
        assert _forecast_bytes(restored) == reference
        restored.close()

    def test_restore_tolerates_a_torn_journal_tail(self, tmp_path):
        with installed(MetricsRegistry()) as registry:
            core = ServiceCore(("default",), directory=tmp_path)
            for series, t, value in _publish_sequence(50):
                core.publish("default", series, t, value)
            core.close()
            journal = next((tmp_path / "default").glob("*.jsonl"))
            with journal.open("rb") as f:
                intact = f.read()
            atomic_replace_bytes(journal, intact + b'{"t": 99999.0, "v": 0.')
            restored = ServiceCore.restore(tmp_path)
            total = sum(
                restored.tenant("default").memory.count(s)
                for s in restored.series_names("default")
            )
            assert total == 50
            assert (
                counter_value(registry, "repro_memory_corrupt_journal_lines_total")
                == 1
            )
            restored.close()

    def test_restore_requires_a_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="MANIFEST"):
            ServiceCore.restore(tmp_path)

    def test_restore_rejects_foreign_state_versions(self, tmp_path):
        atomic_replace_json(
            tmp_path / MANIFEST_NAME,
            {"state_version": 99, "tenants": ["default"]},
        )
        with pytest.raises(ValueError, match="state_version"):
            ServiceCore.restore(tmp_path)

    def test_restore_metrics(self, tmp_path):
        core = ServiceCore(("default",), directory=tmp_path)
        core.register("default", "sensor.a", "sensor", {}, ttl=1e12)
        for series, t, value in _publish_sequence(30, series_count=3):
            core.publish("default", series, t, value)
        core.close()
        with installed(MetricsRegistry()) as registry:
            restored = ServiceCore.restore(tmp_path)
            assert counter_value(registry, "repro_server_restores_total") == 1
            assert (
                counter_value(registry, "repro_server_restored_series_total") == 3
            )
            assert (
                counter_value(registry, "repro_server_restored_samples_total")
                == 30
            )
            assert (
                counter_value(
                    registry, "repro_server_restored_registrations_total"
                )
                == 1
            )
            restored.close()

    def test_concurrent_publish_during_recover(self, tmp_path):
        """recover() under live publishes: no lost samples, no torn reads."""
        core = ServiceCore(("default",), directory=tmp_path)
        for i in range(100):
            core.publish("default", "cpu.hot", float(i), 0.5)
        errors: list[Exception] = []

        def publisher():
            try:
                for i in range(100, 200):
                    core.publish("default", "cpu.hot", float(i), 0.5)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=publisher)
        thread.start()
        for _ in range(20):
            core.recover("default", "cpu.hot")
        thread.join()
        assert errors == []
        # Every publish (0..199) is both in memory and on disk.
        assert core.tenant("default").memory.count("cpu.hot") == 200
        assert core.recover("default", "cpu.hot") == 200
        core.close()


# ----------------------------------------------------- overload protection


class TestLoadShedding:
    def test_zero_capacity_sheds_with_429_and_retry_after(self):
        with installed(MetricsRegistry()) as registry:
            with ForecastServer(max_inflight=0, shed_retry_after=0.25) as server:
                status, payload, headers = http(
                    server.url + "/v1/default/publish",
                    {"series": "cpu.a", "time": 0.0, "value": 0.5},
                )
                assert status == 429
                assert payload["error"]["code"] == "overloaded"
                assert payload["error"]["reason"] == "overload"
                assert payload["error"]["retry_after"] == 0.25
                assert headers["Retry-After"] == "1"  # ceil(0.25)
            assert (
                counter_value(
                    registry, "repro_server_shed_total", reason="overload"
                )
                == 1
            )

    def test_shed_round_trips_as_server_overloaded(self):
        with ForecastServer(max_inflight=0) as server:
            with NWSClient.connect(server.url) as client:
                with pytest.raises(ServerOverloaded) as info:
                    client.publish("cpu.a", time=0.0, value=0.5)
                assert info.value.reason == "overload"
                assert info.value.retry_after == pytest.approx(0.05)

    def test_admitted_request_still_served(self):
        with ForecastServer(max_inflight=4) as server:
            status, payload, _ = http(
                server.url + "/v1/default/publish",
                {"series": "cpu.a", "time": 0.0, "value": 0.5},
            )
            assert status == 200
            assert payload["count"] == 1

    def test_try_admit_slot_accounting(self):
        server = ForecastServer(max_inflight=1)
        try:
            assert server.try_admit() is None
            assert server.try_admit() == "overload"
            server.release()
            assert server.try_admit() is None
            server.release()
        finally:
            server._httpd.server_close()


class TestDrain:
    def test_draining_sheds_new_arrivals(self):
        with ForecastServer() as server:
            server.begin_drain()
            status, payload, _ = http(server.url + "/v1/health")
            assert status == 429
            assert payload["error"]["reason"] == "draining"

    def test_health_reports_drain_state(self):
        server = ForecastServer()
        try:
            status, payload = server.dispatch("GET", "/v1/health", {})
            assert status == 200
            assert payload["server"]["draining"] is False
            assert payload["server"]["inflight"] == 0
            server.begin_drain()
            _, payload = server.dispatch("GET", "/v1/health", {})
            assert payload["server"]["draining"] is True
        finally:
            server._httpd.server_close()


class TestRequestDeadlines:
    def test_expired_budget_is_shed_before_dispatch(self):
        with ForecastServer() as server:
            status, payload, headers = http(
                server.url + "/v1/health", headers={DEADLINE_HEADER: "-1.0"}
            )
            assert status == 429
            assert payload["error"]["reason"] == "deadline"
            assert payload["error"]["retry_after"] == 0.0
            assert headers["Retry-After"] == "0"

    def test_generous_budget_is_served(self):
        with ForecastServer() as server:
            status, payload, _ = http(
                server.url + "/v1/health", headers={DEADLINE_HEADER: "30.0"}
            )
            assert status == 200
            assert payload["status"] == "ok"

    def test_malformed_budget_is_ignored(self):
        with ForecastServer() as server:
            status, _, _ = http(
                server.url + "/v1/health", headers={DEADLINE_HEADER: "soon"}
            )
            assert status == 200

    def test_core_checks_the_deadline_per_operation(self):
        core = ServiceCore(("default",))
        set_request_deadline(time.monotonic() - 1.0)
        try:
            with pytest.raises(ServerOverloaded) as info:
                core.publish("default", "cpu.a", 0.0, 0.5)
            assert info.value.reason == "deadline"
        finally:
            set_request_deadline(None)
        assert request_deadline() is None
        assert core.publish("default", "cpu.a", 0.0, 0.5) == 1

    def test_transport_attaches_the_deadline_header(self):
        with ForecastServer() as server:
            # 1 microsecond is spent before the request even leaves the
            # socket, so the server always sees an expired budget.
            with NWSClient.connect(server.url, deadline=1e-6) as client:
                with pytest.raises(ServerOverloaded) as info:
                    client.series_names()
                assert info.value.reason == "deadline"
            with NWSClient.connect(server.url, deadline=30.0) as client:
                assert client.series_names() == []


class TestUncleanShutdown:
    def test_hung_worker_is_counted_and_surfaced(self):
        with installed(MetricsRegistry()) as registry:
            server = ForecastServer(shutdown_timeout=0.05)
            server.start()
            # Simulate a wedged maintenance worker: a thread that ignores
            # the stop event entirely.
            hang = threading.Event()
            server._maintenance_thread = threading.Thread(
                target=hang.wait, daemon=True
            )
            server._maintenance_thread.start()
            server.stop()
            assert server.unclean_shutdowns == 1
            assert (
                counter_value(registry, "repro_server_unclean_shutdown_total")
                == 1
            )
            _, payload = server.dispatch("GET", "/v1/health", {})
            assert payload["server"]["unclean_shutdowns"] == 1
            hang.set()

    def test_clean_shutdown_counts_nothing(self):
        server = ForecastServer()
        server.start()
        server.stop()
        assert server.unclean_shutdowns == 0


class TestHTTPClientAcrossRestart:
    def test_client_survives_a_server_restart(self, tmp_path):
        from repro.faults import RetryPolicy

        core = ServiceCore(("default",), directory=tmp_path)
        server = ForecastServer(core)
        server.start()
        client = NWSClient.connect(
            server.url,
            retry=RetryPolicy(
                retries=4, base_delay=0.01, max_delay=0.1, jitter=0.0,
                sleep=time.sleep,
            ),
        )
        assert client.publish("cpu.a", time=0.0, value=0.5) == 1
        port = server.port
        server.stop()

        # Same port, restored state.  The client's cached keep-alive
        # socket either went stale (reconnect-once) or is answered with
        # a connection-closing drain shed (retry + reconnect); either
        # way the facade call succeeds against the restarted server.
        restored = ForecastServer(ServiceCore.restore(tmp_path), port=port)
        restored.start()
        try:
            times, values = client.fetch("cpu.a")
            assert times == [0.0]
            assert values == [0.5]
            assert client.publish("cpu.a", time=1.0, value=0.6) == 2
        finally:
            client.close()
            restored.stop()
