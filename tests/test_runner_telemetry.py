"""Cross-process telemetry: parallel == serial, byte for byte.

Worker processes run each simulation under a private registry/tracer;
the parent merges the snapshots and span batches back in submission
order.  These tests pin the headline property -- a jobs=4 run exports
the exact bytes of a serial run over the deterministic view -- and the
failure policy: a worker snapshot that cannot merge is dropped and
counted, never raised.
"""

import pytest

from repro.experiments.testbed import TestbedConfig
from repro.obs import (
    MetricsRegistry,
    Tracer,
    WALL_METRICS,
    deterministic_view,
    installed,
    render_jsonl,
    render_prometheus,
    traced,
)
from repro.runner import Runner, engine

TINY = TestbedConfig(duration=1500.0, warmup=300.0)
HOSTS = ("thing1", "conundrum", "thing2", "gremlin")


def _run_with_scoped_sinks(jobs: int):
    """Run the four-host testbed; return (merged registry, tracer).

    The Runner is constructed *outside* the installed scope so its own
    cache counters (which legitimately differ between serial and
    parallel: ``mode=...`` labels) bind to the null registry; only the
    merged worker telemetry lands in the scoped sinks.
    """
    runner = Runner(jobs=jobs)
    registry = MetricsRegistry()
    tracer = Tracer(clock=lambda: 0.0)
    with installed(registry), traced(tracer):
        runner.run(HOSTS, TINY)
    return registry, tracer


class TestParallelSerialParity:
    @pytest.fixture(scope="class")
    def serial(self):
        return _run_with_scoped_sinks(jobs=1)

    @pytest.fixture(scope="class")
    def parallel(self):
        return _run_with_scoped_sinks(jobs=4)

    def test_prometheus_bytes_identical(self, serial, parallel):
        assert render_prometheus(
            deterministic_view(serial[0])
        ) == render_prometheus(deterministic_view(parallel[0]))

    def test_jsonl_bytes_identical(self, serial, parallel):
        assert render_jsonl(deterministic_view(serial[0])) == render_jsonl(
            deterministic_view(parallel[0])
        )

    def test_spans_identical(self, serial, parallel):
        assert serial[1].spans == parallel[1].spans

    def test_kernel_run_spans_present_per_host(self, serial):
        kernel = [s for s in serial[1].spans if s.name == "kernel.run"]
        assert [s.attrs["host"] for s in kernel] == list(HOSTS)
        assert all(s.end == pytest.approx(TINY.duration) for s in kernel)

    def test_wall_metrics_present_but_excluded_from_view(self, parallel):
        snapshot = parallel[0].snapshot()
        assert "repro_runner_host_seconds" in snapshot
        view = deterministic_view(snapshot)
        assert not WALL_METRICS & set(view)
        # The view drops only wall families, nothing else.
        assert set(snapshot) - set(view) <= WALL_METRICS


class TestHostSecondsHistogram:
    def test_one_observation_per_simulated_host(self):
        registry, _ = _run_with_scoped_sinks(jobs=2)
        samples = registry.snapshot()["repro_runner_host_seconds"]["samples"]
        by_host = {s["labels"]["host"]: s["count"] for s in samples}
        assert by_host == {host: 1 for host in HOSTS}
        assert all(
            s["sum"] > 0.0 for s in samples
        ), "wall time per host must be positive"


class TestSnapshotErrorPolicy:
    def _broken_simulate(self, bad_snapshot):
        real = engine._simulate_one

        def simulate(name, config):
            run, _snapshot, spans, wall = real(name, config)
            return run, bad_snapshot, spans, wall

        return simulate

    @pytest.mark.parametrize(
        "bad",
        [
            # The runner binds this counter at construction, so a gauge
            # of the same name is a kind conflict in the parent registry.
            {
                "repro_runner_snapshot_errors_total": {
                    "type": "gauge",
                    "samples": [{"labels": {}, "value": 1.0}],
                }
            },
            "not a snapshot at all",
            {"repro_x_y": {"type": "counter", "samples": [{"value": 1}]}},
        ],
        ids=["kind-conflict", "non-dict", "missing-labels"],
    )
    def test_unmergeable_snapshot_dropped_and_counted(self, monkeypatch, bad):
        monkeypatch.setattr(engine, "_simulate_one", self._broken_simulate(bad))
        registry = MetricsRegistry()
        with installed(registry):
            runner = Runner()
            runs = runner.run(("thing1", "conundrum"), TINY)
        assert [r.host for r in runs] == ["thing1", "conundrum"]  # results sound
        assert runner.stats.snapshot_errors == 2
        assert "snapshot_errors=2" in runner.stats.summary()
        snap = registry.snapshot()
        assert (
            snap["repro_runner_snapshot_errors_total"]["samples"][0]["value"]
            == 2.0
        )

    def test_clean_run_counts_zero(self):
        registry = MetricsRegistry()
        with installed(registry):
            runner = Runner()
            runner.run_one("thing1", TINY)
        assert runner.stats.snapshot_errors == 0
