"""End-to-end integration: sensing -> forecasting -> analysis -> scheduling.

These tests exercise whole pipelines across module boundaries, using the
shared 4-hour testbed runs from conftest.
"""

import numpy as np
import pytest

from repro.analysis.acf import acf, acf_confidence_band
from repro.analysis.aggregate import aggregate_series
from repro.analysis.hurst import hurst_rs
from repro.core.errors import one_step_prediction_errors, true_forecasting_errors
from repro.core.mixture import forecast_series
from repro.core.predictor import NWSPredictor
from repro.trace.io import load_trace_csv, save_trace_csv
from repro.trace.resample import resample_nearest


class TestSensingToForecasting:
    def test_forecasting_pipeline_on_simulated_trace(self, thing1_run):
        values = thing1_run.values("load_average")
        forecasts = forecast_series(values)
        err = one_step_prediction_errors(forecasts[1:], values[1:])
        assert err.mae_percent < 7.0

    def test_predictor_streaming_matches_batch(self, thing1_run):
        values = thing1_run.values("load_average")[:500]
        predictor = NWSPredictor()
        predictions = []
        for v in values:
            if predictor.n_measurements > 0:
                predictions.append(predictor.forecast_next())
            predictor.observe(float(v))
        err = np.abs(np.asarray(predictions) - values[1:]).mean()
        assert err < 0.08

    def test_true_forecast_error_close_to_measurement_error(self, thing2_run):
        values = thing2_run.series["load_average"].values
        times = thing2_run.series["load_average"].times
        forecasts = forecast_series(values)
        pre, truth = [], []
        for obs in thing2_run.observations:
            i = int(np.searchsorted(times, obs.start_time, side="right")) - 1
            if i < 0 or i + 1 >= forecasts.size or np.isnan(forecasts[i + 1]):
                continue
            pre.append(forecasts[i + 1])
            truth.append(obs.observed)
        forecast_err = true_forecasting_errors(np.array(pre), np.array(truth)).mae
        meas = thing2_run.premeasurements("load_average")
        meas_err = np.abs(meas - thing2_run.observed()).mean()
        assert forecast_err == pytest.approx(meas_err, abs=0.05)


class TestSensingToAnalysis:
    def test_simulated_trace_is_long_range_dependent(self, thing2_run):
        values = thing2_run.values("load_average")
        rho = acf(values, nlags=60)
        band = acf_confidence_band(values.size)
        assert rho[1:61].mean() > 3 * band

    def test_hurst_in_paper_range(self, thing2_run):
        est = hurst_rs(thing2_run.values("load_average"))
        assert 0.55 < est.value < 0.95

    def test_aggregation_reduces_variance_slowly(self, thing2_run):
        values = thing2_run.values("load_average")
        agg = aggregate_series(values, 30)
        assert agg.var() < values.var()
        assert agg.var() > values.var() / 30.0


class TestAnomalyChain:
    def test_conundrum_chain(self, conundrum_run):
        """Sensor pathology propagates exactly as the paper describes."""
        truth = conundrum_run.observed()
        la = conundrum_run.premeasurements("load_average")
        hy = conundrum_run.premeasurements("nws_hybrid")
        # Truth: a full-priority process gets nearly the whole machine.
        assert truth.mean() > 0.9
        # Load average claims half of it is gone; the hybrid knows better.
        assert la.mean() < 0.65
        assert np.abs(hy - truth).mean() < np.abs(la - truth).mean() / 3.0

    def test_kongo_chain(self, kongo_run):
        truth = kongo_run.observed()
        la = kongo_run.premeasurements("load_average")
        hy = kongo_run.premeasurements("nws_hybrid")
        assert 0.4 < truth.mean() < 0.7
        assert np.abs(la - truth).mean() < 0.15
        assert np.abs(hy - truth).mean() > 2.0 * np.abs(la - truth).mean()


class TestTracePersistenceRoundtrip:
    def test_simulated_series_roundtrip_and_resample(self, thing1_run, tmp_path):
        series = thing1_run.series["nws_hybrid"]
        path = tmp_path / "hybrid.csv"
        save_trace_csv(series, path)
        loaded = load_trace_csv(path)
        np.testing.assert_array_equal(loaded.values, series.values)
        regular = resample_nearest(loaded, 10.0)
        assert regular.period == pytest.approx(10.0)
