"""Tests for repro.nws (the NWS service architecture)."""

import numpy as np
import pytest

from repro.nws.errors import RegistrationLapsed, SeriesUnavailable
from repro.nws.forecaster import ForecasterService  # lint: ignore[API001] -- unit-tests the data plane itself
from repro.nws.memory import MemoryStore  # lint: ignore[API001] -- unit-tests the data plane itself
from repro.nws.nameserver import NameServer
from repro.nws.system import NWSSystem


class TestNameServer:
    def test_register_and_lookup(self):
        ns = NameServer()
        ns.register("sensor.cpu.a", "sensor", {"host": "a", "resource": "cpu"})
        ns.register("sensor.cpu.b", "sensor", {"host": "b", "resource": "cpu"})
        ns.register("memory.main", "memory")
        assert len(ns.lookup("sensor")) == 2
        assert [r.name for r in ns.lookup("sensor", host="b")] == ["sensor.cpu.b"]
        assert len(ns) == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown component kind"):
            NameServer().register("x", "scheduler")

    def test_ttl_expiry(self):
        clock = {"t": 0.0}
        ns = NameServer(clock=lambda: clock["t"])
        ns.register("sensor.cpu.a", "sensor", ttl=30.0)
        assert len(ns.lookup("sensor")) == 1
        clock["t"] = 31.0
        assert ns.lookup("sensor") == []
        with pytest.raises(RegistrationLapsed):
            ns.get("sensor.cpu.a")

    def test_refresh_extends_ttl(self):
        clock = {"t": 0.0}
        ns = NameServer(clock=lambda: clock["t"])
        ns.register("sensor.cpu.a", "sensor", ttl=30.0)
        clock["t"] = 25.0
        ns.refresh("sensor.cpu.a", ttl=30.0)
        clock["t"] = 50.0
        assert len(ns.lookup("sensor")) == 1

    def test_refresh_dead_rejected(self):
        clock = {"t": 0.0}
        ns = NameServer(clock=lambda: clock["t"])
        ns.register("sensor.cpu.a", "sensor", ttl=10.0)
        clock["t"] = 20.0
        with pytest.raises(RegistrationLapsed):
            ns.refresh("sensor.cpu.a", ttl=10.0)

    def test_reregistration_replaces(self):
        ns = NameServer()
        ns.register("sensor.cpu.a", "sensor", {"v": "1"})
        ns.register("sensor.cpu.a", "sensor", {"v": "2"})
        assert ns.get("sensor.cpu.a").attributes["v"] == "2"
        assert len(ns) == 1

    def test_unregister_idempotent(self):
        ns = NameServer()
        ns.register("m", "memory")
        ns.unregister("m")
        ns.unregister("m")
        assert len(ns) == 0


class TestMemoryStore:
    def test_publish_and_fetch(self):
        mem = MemoryStore()
        for i in range(5):
            mem.publish("cpu.a", 10.0 * i, 0.1 * i)
        times, values = mem.fetch("cpu.a")
        assert times.size == 5
        assert values[-1] == pytest.approx(0.4)

    def test_bounded_retention(self):
        mem = MemoryStore(capacity=3)
        for i in range(10):
            mem.publish("s", float(i), float(i))
        times, values = mem.fetch("s")
        np.testing.assert_allclose(times, [7.0, 8.0, 9.0])

    def test_out_of_order_rejected(self):
        mem = MemoryStore()
        mem.publish("s", 10.0, 0.5)
        with pytest.raises(ValueError, match="out-of-order"):
            mem.publish("s", 5.0, 0.5)

    def test_fetch_filters(self):
        mem = MemoryStore()
        for i in range(10):
            mem.publish("s", float(i), float(i))
        times, _ = mem.fetch("s", start=5.0)
        assert times[0] == 5.0
        times, _ = mem.fetch("s", stop=3.0)
        assert times[-1] == 3.0
        times, _ = mem.fetch("s", limit=2)
        np.testing.assert_allclose(times, [8.0, 9.0])

    def test_fetch_since_alias_deprecated(self):
        mem = MemoryStore()
        for i in range(10):
            mem.publish("s", float(i), float(i))
        with pytest.warns(DeprecationWarning, match="since"):
            times, _ = mem.fetch("s", since=5.0)
        assert times[0] == 5.0

    def test_unknown_series_rejected(self):
        with pytest.raises(SeriesUnavailable, match="nope"):
            MemoryStore().fetch("nope")

    def test_persistence_roundtrip(self, tmp_path):
        mem = MemoryStore(capacity=100, directory=tmp_path)
        for i in range(5):
            mem.publish("cpu.a", float(i), 0.5)
        fresh = MemoryStore(capacity=100, directory=tmp_path)
        assert fresh.recover("cpu.a") == 5
        times, values = fresh.fetch("cpu.a")
        assert times.size == 5

    def test_recover_respects_capacity(self, tmp_path):
        mem = MemoryStore(capacity=100, directory=tmp_path)
        for i in range(50):
            mem.publish("s", float(i), 0.5)
        small = MemoryStore(capacity=10, directory=tmp_path)
        assert small.recover("s") == 10

    def test_recover_without_directory_rejected(self):
        with pytest.raises(RuntimeError):
            MemoryStore().recover("s")

    def test_as_trace(self):
        mem = MemoryStore()
        mem.publish("cpu.a", 0.0, 0.5)
        mem.publish("cpu.a", 10.0, 0.6)
        trace = mem.as_trace("cpu.a", host="a", method="load_average")
        assert trace.host == "a" and len(trace) == 2


class TestForecasterService:
    def test_query_tracks_series(self):
        mem = MemoryStore()
        svc = ForecasterService(mem)
        for i in range(30):
            mem.publish("cpu.a", 10.0 * i, 0.7)
        report = svc.query("cpu.a")
        assert report.forecast == pytest.approx(0.7)
        assert report.n_measurements == 30
        assert report.as_of == pytest.approx(290.0)
        assert report.method

    def test_incremental_consumption(self):
        mem = MemoryStore()
        svc = ForecasterService(mem)
        for i in range(10):
            mem.publish("s", float(i), 0.5)
        first = svc.query("s")
        for i in range(10, 15):
            mem.publish("s", float(i), 0.9)
        second = svc.query("s")
        assert second.n_measurements == 15
        assert second.forecast > first.forecast  # saw the jump to 0.9

    def test_error_bar_reported(self):
        mem = MemoryStore()
        svc = ForecasterService(mem)
        rng = np.random.default_rng(0)
        for i in range(100):
            mem.publish("s", float(i), float(np.clip(0.5 + rng.normal(0, 0.1), 0, 1)))
        report = svc.query("s")
        assert 0.0 < report.error < 0.5

    def test_query_all(self):
        mem = MemoryStore()
        svc = ForecasterService(mem)
        mem.publish("a", 0.0, 0.5)
        mem.publish("b", 0.0, 0.6)
        out = svc.query_all()
        assert set(out) == {"a", "b"}

    def test_unknown_series(self):
        with pytest.raises(SeriesUnavailable):
            ForecasterService(MemoryStore()).query("nope")

    def test_degrades_to_last_known_good(self):
        mem = MemoryStore()
        svc = ForecasterService(mem)
        for i in range(30):
            mem.publish("s", 10.0 * i, 0.7 + 0.05 * (i % 3))
        fresh = svc.query("s")
        assert not fresh.stale
        assert fresh.error > 0.0
        mem.forget("s")
        degraded = svc.query("s")
        assert degraded.stale
        assert degraded.forecast == pytest.approx(fresh.forecast)
        assert degraded.error == pytest.approx(2.0 * fresh.error)
        # The widening doubles per consecutive miss, capped at 32x.
        for expected in (4.0, 8.0, 16.0, 32.0, 32.0):
            assert svc.query("s").error == pytest.approx(expected * fresh.error)

    def test_degraded_then_recovered(self):
        mem = MemoryStore()
        svc = ForecasterService(mem)
        for i in range(20):
            mem.publish("s", 10.0 * i, 0.5)
        svc.query("s")
        mem.forget("s")
        assert svc.query("s").stale
        for i in range(20, 25):
            mem.publish("s", 10.0 * i, 0.5)
        recovered = svc.query("s")
        assert not recovered.stale

    def test_stale_data_widens_error_by_age(self):
        clock = {"t": 0.0}
        mem = MemoryStore()
        svc = ForecasterService(mem, clock=lambda: clock["t"], stale_after=30.0)
        for i in range(20):
            mem.publish("s", 10.0 * i, 0.5)
        clock["t"] = 190.0  # as_of also 190.0 at the last publish
        fresh = svc.query("s")
        assert not fresh.stale
        clock["t"] = 250.0  # two full horizons past as_of
        stale = svc.query("s")
        assert stale.stale
        assert stale.error == pytest.approx(4.0 * fresh.error)
        assert stale.forecast == pytest.approx(fresh.forecast)


class TestNWSSystem:
    @pytest.fixture(scope="class")
    def system(self):
        system = NWSSystem(["thing1", "kongo"], seed=5)
        system.advance(1800.0)
        return system

    def test_discovery(self, system):
        assert system.cpu_sensors() == ["sensor.cpu.kongo", "sensor.cpu.thing1"]

    def test_memory_filled(self, system):
        assert system.memory.count("cpu.thing1.load_average") > 100
        assert system.memory.count("cpu.kongo.nws_hybrid") > 100

    def test_availability_queries(self, system):
        report = system.client().query(
            system.series_name("kongo", "load_average")
        )
        # kongo's hog pins availability near 0.5.
        assert report.forecast == pytest.approx(0.5, abs=0.1)
        assert report.n_measurements > 100

    def test_availability_shim_warns_and_matches(self, system):
        with pytest.warns(DeprecationWarning, match="client"):
            shimmed = system.availability("kongo", method="load_average")
        direct = system.client().query(
            system.series_name("kongo", "load_average")
        )
        assert shimmed.forecast == direct.forecast
        assert shimmed.method == direct.method

    def test_availability_map_shim_warns(self, system):
        with pytest.warns(DeprecationWarning, match="client"):
            out = system.availability_map()
        assert set(out) == {"thing1", "kongo"}

    def test_unknown_host(self, system):
        with pytest.raises(KeyError):
            system.series_name("nonesuch")

    def test_validation(self):
        with pytest.raises(ValueError):
            NWSSystem([])
        system = NWSSystem(["gremlin"], seed=1)
        system.advance(100.0)
        with pytest.raises(ValueError):
            system.advance(50.0)
