"""Tests for repro.analysis.aggregate (variance-time law, Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aggregate import (
    aggregate_series,
    aggregated_variances,
    variance_time_slope,
)
from repro.analysis.fgn import fgn


class TestAggregateSeries:
    def test_block_means(self):
        x = np.array([1.0, 3.0, 5.0, 7.0, 9.0, 11.0])
        np.testing.assert_allclose(aggregate_series(x, 2), [2.0, 6.0, 10.0])

    def test_partial_block_discarded(self):
        x = np.arange(7, dtype=float)
        assert aggregate_series(x, 3).size == 2

    def test_m_one_is_identity(self, rng):
        x = rng.normal(size=50)
        np.testing.assert_allclose(aggregate_series(x, 1), x)

    def test_mean_preserved_when_exact(self, rng):
        x = rng.normal(size=300)
        assert aggregate_series(x, 30).mean() == pytest.approx(x.mean())

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            aggregate_series([1.0, 2.0], 3)

    def test_bad_m_rejected(self, rng):
        with pytest.raises(ValueError):
            aggregate_series(rng.normal(size=10), 0)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=40, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_property_length_and_bounds(self, m, n):
        gen = np.random.default_rng(m * 1000 + n)
        x = gen.uniform(0.0, 1.0, size=n)
        if n < m:
            return
        agg = aggregate_series(x, m)
        assert agg.size == n // m
        assert np.all(agg >= x.min() - 1e-12)
        assert np.all(agg <= x.max() + 1e-12)


class TestVarianceTime:
    def test_iid_variance_decays_like_one_over_m(self, rng):
        x = rng.normal(size=120_000)
        variances = aggregated_variances(x, [1, 4, 16])
        assert variances[1] == pytest.approx(variances[0] / 4.0, rel=0.15)
        assert variances[2] == pytest.approx(variances[0] / 16.0, rel=0.25)

    def test_lrd_variance_decays_slower(self):
        x = fgn(1 << 16, 0.85, rng=20)
        variances = aggregated_variances(x, [1, 16])
        # For H = 0.85: ratio ~ 16^{2H-2} = 16^{-0.3} ~ 0.43, not 1/16.
        ratio = variances[1] / variances[0]
        assert ratio > 3.0 / 16.0

    def test_iid_slope_near_minus_one(self, rng):
        x = rng.normal(size=60_000)
        slope, hurst = variance_time_slope(x)
        assert slope == pytest.approx(-1.0, abs=0.1)
        assert hurst == pytest.approx(0.5, abs=0.05)

    def test_fgn_slope_gives_hurst(self):
        x = fgn(1 << 16, 0.8, rng=21)
        _, hurst = variance_time_slope(x)
        assert hurst == pytest.approx(0.8, abs=0.08)

    def test_level_too_large_rejected(self, rng):
        with pytest.raises(ValueError, match="fewer than 2 blocks"):
            aggregated_variances(rng.normal(size=100), [80])

    def test_needs_two_levels(self, rng):
        with pytest.raises(ValueError, match="two levels"):
            variance_time_slope(rng.normal(size=1000), levels=[4])
