"""Tests for repro.workload.arrivals."""

import numpy as np
import pytest

from repro.workload.arrivals import DiurnalPoissonArrivals, PoissonArrivals


class TestPoisson:
    def test_rate(self):
        proc = PoissonArrivals(0.1)  # one per 10 s
        rng = np.random.default_rng(0)
        gaps = [proc.next_interarrival(0.0, rng) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.05)

    def test_positive_gaps(self):
        proc = PoissonArrivals(5.0)
        rng = np.random.default_rng(1)
        assert all(proc.next_interarrival(0.0, rng) > 0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestDiurnal:
    def test_rate_at_peak_and_trough(self):
        proc = DiurnalPoissonArrivals(1.0, amplitude=0.5, peak_time=12 * 3600.0)
        assert proc.rate_at(12 * 3600.0) == pytest.approx(1.5)
        assert proc.rate_at(0.0) == pytest.approx(0.5)

    def test_mean_rate_preserved_over_a_day(self):
        proc = DiurnalPoissonArrivals(1.0 / 60.0, amplitude=0.8)
        rng = np.random.default_rng(2)
        # Count arrivals over several simulated days by walking the clock.
        t, count, horizon = 0.0, 0, 5 * 86400.0
        while t < horizon:
            t += proc.next_interarrival(t, rng)
            count += 1
        assert count / (horizon / 60.0) == pytest.approx(1.0, rel=0.05)

    def test_more_arrivals_near_peak(self):
        proc = DiurnalPoissonArrivals(1.0 / 120.0, amplitude=0.9, peak_time=15 * 3600.0)
        rng = np.random.default_rng(3)
        peak_count = trough_count = 0
        for day in range(40):
            base = day * 86400.0
            t = base + 14 * 3600.0
            while t < base + 16 * 3600.0:
                t += proc.next_interarrival(t, rng)
                peak_count += 1
            t = base + 2 * 3600.0
            while t < base + 4 * 3600.0:
                t += proc.next_interarrival(t, rng)
                trough_count += 1
        assert peak_count > 3 * trough_count

    def test_zero_amplitude_is_homogeneous(self):
        proc = DiurnalPoissonArrivals(0.05, amplitude=0.0)
        rng = np.random.default_rng(4)
        gaps = [proc.next_interarrival(1000.0, rng) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(20.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalPoissonArrivals(0.0)
        with pytest.raises(ValueError):
            DiurnalPoissonArrivals(1.0, amplitude=1.0)
