"""Cross-cutting property-based tests (hypothesis) on system invariants.

These generate random workloads, series and parameters and assert the
invariants that everything else in the library silently relies on:
CPU-time conservation in the kernel, bounded sensor outputs, forecast
bounds, and aggregation linearity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.aggregate import aggregate_series
from repro.core.mixture import AdaptiveForecaster, forecast_series
from repro.sensors.loadavg import LoadAverageSensor
from repro.sensors.vmstat import VmstatSensor
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.process import Process

# Compact workload description: list of (spawn_time, demand, nice).
workload_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.5, max_value=30.0),
        st.integers(min_value=0, max_value=19),
    ),
    min_size=0,
    max_size=8,
)


class TestKernelConservation:
    @given(workload=workload_strategy, ncpu=st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_cpu_time_is_conserved(self, workload, ncpu):
        """user + sys + idle == ncpu * elapsed, for any workload."""
        k = Kernel(KernelConfig(ncpu=ncpu))
        for at, demand, nice in workload:
            k.at(at, lambda d=demand, n=nice: k.spawn(Process("p", cpu_demand=d, nice=n)))
        horizon = 80.0
        k.run_until(horizon)
        total = k.cum_user + k.cum_sys + k.cum_idle
        assert total == pytest.approx(ncpu * horizon, rel=1e-6)

    @given(workload=workload_strategy)
    @settings(max_examples=30, deadline=None)
    def test_per_process_time_matches_global(self, workload):
        """Sum of per-process CPU time == global busy counters."""
        k = Kernel()
        spawned = []

        def make(d, n):
            p = k.spawn(Process("p", cpu_demand=d, nice=n))
            spawned.append(p)

        for at, demand, nice in workload:
            k.at(at, lambda d=demand, n=nice: make(d, n))
        k.run_until(80.0)
        per_process = sum(p.cpu_time for p in spawned)
        assert per_process == pytest.approx(k.cum_user + k.cum_sys, abs=1e-6)

    @given(workload=workload_strategy)
    @settings(max_examples=20, deadline=None)
    def test_no_process_exceeds_demand(self, workload):
        k = Kernel()
        spawned = []

        def make(d, n):
            spawned.append(k.spawn(Process("p", cpu_demand=d, nice=n)))

        for at, demand, nice in workload:
            k.at(at, lambda d=demand, n=nice: make(d, n))
        k.run_until(200.0)
        for p in spawned:
            assert p.cpu_time <= p.cpu_demand + 1e-6

    @given(workload=workload_strategy)
    @settings(max_examples=20, deadline=None)
    def test_load_average_nonnegative_and_bounded(self, workload):
        k = Kernel()
        for at, demand, nice in workload:
            k.at(at, lambda d=demand, n=nice: k.spawn(Process("p", cpu_demand=d, nice=n)))
        peaks = []
        k.on_tick(lambda kern: peaks.append(kern.load_average))
        k.run_until(100.0)
        assert all(0.0 <= la <= len(workload) + 1 for la in peaks)


class TestSensorBounds:
    @given(workload=workload_strategy)
    @settings(max_examples=20, deadline=None)
    def test_sensors_always_in_unit_interval(self, workload):
        k = Kernel()
        la = LoadAverageSensor()
        vm = VmstatSensor()
        vm.prime(k)
        for at, demand, nice in workload:
            k.at(at, lambda d=demand, n=nice: k.spawn(Process("p", cpu_demand=d, nice=n)))
        for stop in (10.0, 30.0, 60.0, 90.0):
            k.run_until(stop)
            assert 0.0 <= la.read(k).availability <= 1.0
            assert 0.0 <= vm.read(k).availability <= 1.0


class TestForecastBounds:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=80
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_mixture_forecasts_within_data_hull(self, values):
        out = forecast_series(np.asarray(values), AdaptiveForecaster())
        finite = out[1:]
        assert np.all(finite >= min(values) - 1e-9)
        assert np.all(finite <= max(values) + 1e-9)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=60
        ),
        m=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_aggregation_is_linear_and_mean_preserving(self, values, m):
        arr = np.asarray(values)
        if arr.size < m:
            return
        # Linearity: agg(a*x + b) == a*agg(x) + b.
        left = aggregate_series(2.0 * arr + 0.25, m)
        right = 2.0 * aggregate_series(arr, m) + 0.25
        np.testing.assert_allclose(left, right, atol=1e-12)


class TestFailureInjection:
    def test_constant_trace_forecasts_exactly(self):
        values = np.full(200, 0.42)
        out = forecast_series(values)
        np.testing.assert_allclose(out[1:], 0.42)

    def test_square_wave_bounded_error(self):
        # Worst realistic case: availability flips 0 <-> 1 every sample.
        values = np.tile([0.0, 1.0], 150).astype(float)
        out = forecast_series(values)
        err = np.abs(out[1:] - values[1:]).mean()
        assert err <= 1.0  # never worse than maximal
        # The mixture should settle near the best achievable (~0.5 via
        # means) rather than last-value's 1.0.
        assert err < 0.75

    def test_kernel_with_huge_event_burst(self):
        # 500 events at the same instant must all fire, in order.
        k = Kernel()
        fired = []
        for i in range(500):
            k.at(5.0, lambda i=i: fired.append(i))
        k.run_until(6.0)
        assert fired == list(range(500))

    def test_vmstat_survives_time_standing_still(self):
        k = Kernel()
        vm = VmstatSensor()
        vm.prime(k)
        first = vm.read(k).availability  # zero-length interval at t=0
        assert 0.0 <= first <= 1.0

    def test_process_completing_exactly_at_tick_boundary(self):
        k = Kernel()
        p = k.spawn(Process("p", cpu_demand=1.0))  # finishes exactly at t=1
        k.run_until(2.0)
        assert p.done
        assert p.end_time == pytest.approx(1.0, abs=1e-6)
