"""Edge cases of the NWS memory store: unknown series, corrupt journals,
and behaviour exactly at the capacity boundary."""

import json

import pytest

from repro.nws.errors import SeriesUnavailable
from repro.nws.memory import MemoryStore  # lint: ignore[API001] -- unit-tests the data plane itself
from repro.obs import MetricsRegistry, installed


class TestUnknownSeries:
    def test_fetch_unknown_series_raises_typed_error(self):
        store = MemoryStore()
        store.publish("cpu.a.hybrid", 0.0, 0.5)
        with pytest.raises(SeriesUnavailable, match="cpu.b.hybrid") as info:
            store.fetch("cpu.b.hybrid")
        assert info.value.series == "cpu.b.hybrid"
        # Typed as LookupError, deliberately NOT KeyError: callers that
        # conflate "no such series" with dict misses mask real bugs.
        assert not isinstance(info.value, KeyError)
        assert isinstance(info.value, LookupError)

    def test_fetch_error_names_known_series(self):
        store = MemoryStore()
        store.publish("known", 0.0, 0.5)
        with pytest.raises(SeriesUnavailable, match="known"):
            store.fetch("missing")

    def test_count_of_unknown_series_is_zero(self):
        assert MemoryStore().count("nope") == 0

    def test_forget_drops_history_not_journal(self, tmp_path):
        store = MemoryStore(capacity=10, directory=tmp_path)
        store.publish("s", 0.0, 0.5)
        assert store.forget("s") is True
        assert store.forget("s") is False  # idempotent, reports absence
        assert store.count("s") == 0
        assert store.recover("s") == 1  # journal survived the forget


class TestCapacityBoundary:
    def test_exactly_at_capacity_keeps_everything(self):
        store = MemoryStore(capacity=3)
        for i in range(3):
            store.publish("s", float(i), 0.1 * i)
        times, values = store.fetch("s")
        assert list(times) == [0.0, 1.0, 2.0]

    def test_one_past_capacity_evicts_oldest(self):
        store = MemoryStore(capacity=3)
        for i in range(4):
            store.publish("s", float(i), 0.1 * i)
        times, values = store.fetch("s")
        assert list(times) == [1.0, 2.0, 3.0]
        assert values[0] == pytest.approx(0.1)

    def test_eviction_counter_counts_dropped_samples(self):
        with installed(MetricsRegistry()) as registry:
            store = MemoryStore(capacity=2)
            for i in range(5):
                store.publish("s", float(i), 0.0)
            snap = registry.snapshot()
            evicted = snap["repro_memory_evictions_total"]["samples"][0]["value"]
            assert evicted == 3

    def test_capacity_one(self):
        store = MemoryStore(capacity=1)
        store.publish("s", 0.0, 0.1)
        store.publish("s", 1.0, 0.9)
        times, values = store.fetch("s")
        assert list(times) == [1.0]
        assert list(values) == [0.9]


class TestJournalRecovery:
    def _journal(self, tmp_path, series="s"):
        store = MemoryStore(capacity=100, directory=tmp_path)
        for i in range(5):
            store.publish(series, float(i), 0.1 * i)
        return tmp_path / f"{series}.jsonl"

    def test_recover_round_trip(self, tmp_path):
        self._journal(tmp_path)
        fresh = MemoryStore(capacity=100, directory=tmp_path)
        assert fresh.recover("s") == 5
        times, _ = fresh.fetch("s")
        assert list(times) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = self._journal(tmp_path)
        # Simulate a crash mid-append: the last record is cut short.
        text = path.read_text()
        path.write_text(text + '{"t": 5.0, "v"')
        fresh = MemoryStore(capacity=100, directory=tmp_path)
        assert fresh.recover("s") == 5

    def test_corrupt_middle_lines_are_skipped_and_counted(self, tmp_path):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines()
        lines.insert(2, "not json at all")
        lines.insert(4, json.dumps({"t": 2.5}))  # missing value field
        lines.insert(5, json.dumps({"t": "soon", "v": 0.5}))  # bad type
        path.write_text("\n".join(lines) + "\n")
        with installed(MetricsRegistry()) as registry:
            fresh = MemoryStore(capacity=100, directory=tmp_path)
            assert fresh.recover("s") == 5
            snap = registry.snapshot()
            corrupt = snap["repro_memory_corrupt_journal_lines_total"]
            assert corrupt["samples"][0]["value"] == 3
            recovered = snap["repro_memory_recovered_samples_total"]
            assert recovered["samples"][0]["value"] == 5

    def test_recover_is_bounded_by_capacity(self, tmp_path):
        self._journal(tmp_path)
        fresh = MemoryStore(capacity=2, directory=tmp_path)
        assert fresh.recover("s") == 2
        times, _ = fresh.fetch("s")
        assert list(times) == [3.0, 4.0]

    def test_recover_missing_journal_returns_zero(self, tmp_path):
        store = MemoryStore(capacity=10, directory=tmp_path)
        assert store.recover("never-published") == 0

    def test_recover_without_directory_raises(self):
        with pytest.raises(RuntimeError, match="persistence"):
            MemoryStore().recover("s")
