"""Meta-test: the shipped tree stays lint-clean.

This is the tier-1 regression gate for the invariants the linter
encodes: a PR that reintroduces wall clocks into the simulator, drops
``__slots__`` from a forecaster, or pushes an unstable heap entry fails
here with the exact file/line/rule in the assertion message.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import all_rules, lint_paths

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

pytestmark = pytest.mark.skipif(
    not SRC.is_dir(), reason="src/repro layout not present"
)


def test_src_tree_is_lint_clean():
    result = lint_paths([SRC])
    report = "\n".join(finding.render() for finding in result.findings)
    assert result.ok, f"lint regressions in src/repro:\n{report}"
    assert result.files_checked > 50  # the walk really covered the tree


def test_all_domain_rules_ran():
    result = lint_paths([SRC])
    assert set(result.rules_run) >= {
        "DET001",
        "UNIT001",
        "PROTO001",
        "MUT001",
        "HEAP001",
        "EXC001",
        "DET002",
        "UNIT002",
        "THRD001",
    }


def test_service_layer_clean_under_race_detector():
    """Acceptance gate: the packages the threaded NWS server will touch
    carry no unsynchronized shared-state writes."""
    result = lint_paths(
        [SRC / "runner", SRC / "obs", SRC / "nws"], select=["THRD001"]
    )
    report = "\n".join(finding.render() for finding in result.findings)
    assert result.ok, f"THRD001 regressions:\n{report}"
    assert result.files_checked > 10


def test_no_stale_suppressions_in_tree():
    """Every suppression in the tree silences a real finding (LINT001)."""
    result = lint_paths([SRC])
    stale = [f for f in result.findings if f.rule_id == "LINT001"]
    assert not stale, "\n".join(f.render() for f in stale)
    # The tree's deliberate suppressions are all exercised.
    assert {f.rule_id for f in result.suppressed} == {
        "DET001",
        "EXC001",
        "THRD001",
        "VEC002",
    }


def test_every_suppression_carries_a_justification():
    """``# lint: ignore[...]`` must say *why* (a trailing comment)."""
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if "lint: ignore" not in line:
                continue
            _, _, tail = line.partition("lint: ignore")
            tail = tail.partition("]")[2] if "[" in tail else tail
            assert tail.strip(), (
                f"{path}:{lineno}: suppression without a justification comment"
            )


def test_registry_metadata_complete():
    for rule in all_rules():
        assert rule.rule_id and rule.title and rule.rationale, rule
