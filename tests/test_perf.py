"""Perf records and the regression-diff policy."""

import json

import pytest

from repro.perf import (
    BenchRecord,
    diff_records,
    host_fingerprint,
    load_records,
    record,
    render_diff,
)


class TestRecord:
    def test_round_trip(self, tmp_path):
        path = record(
            "parallel_speedup",
            2.5,
            metric="speedup_ratio",
            unit="x",
            budget=1.0,
            direction="higher",
            directory=tmp_path,
        )
        assert path == tmp_path / "BENCH_parallel_speedup.json"
        loaded = load_records(tmp_path)["parallel_speedup"]
        assert loaded.value == 2.5
        assert loaded.metric == "speedup_ratio"
        assert loaded.unit == "x"
        assert loaded.budget == 1.0
        assert loaded.direction == "higher"
        assert loaded.host == host_fingerprint()
        assert loaded.schema == 1

    def test_rerecord_overwrites(self, tmp_path):
        record("x_bench", 1.0, directory=tmp_path)
        record("x_bench", 2.0, directory=tmp_path)
        assert load_records(tmp_path)["x_bench"].value == 2.0
        assert len(list(tmp_path.glob("BENCH_*.json"))) == 1

    def test_no_stray_temp_files(self, tmp_path):
        record("x_bench", 1.0, directory=tmp_path)
        assert list(tmp_path.iterdir()) == [tmp_path / "BENCH_x_bench.json"]

    @pytest.mark.parametrize("name", ["", "has space", "sl/ash", "-leading"])
    def test_invalid_names_rejected(self, name, tmp_path):
        with pytest.raises(ValueError, match="invalid benchmark name"):
            record(name, 1.0, directory=tmp_path)

    def test_invalid_direction_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="direction"):
            record("x_bench", 1.0, direction="sideways", directory=tmp_path)

    def test_load_skips_corrupt_and_foreign_schema(self, tmp_path):
        record("good", 1.0, directory=tmp_path)
        (tmp_path / "BENCH_trunc.json").write_text('{"name": "trunc"')
        (tmp_path / "BENCH_future.json").write_text(
            json.dumps({"name": "future", "metric": "s", "value": 1, "schema": 99})
        )
        assert set(load_records(tmp_path)) == {"good"}

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_records(tmp_path / "nope")


def _rec(name, value, direction="lower", host="h1"):
    return BenchRecord(
        name=name,
        metric="wall_seconds",
        value=value,
        direction=direction,
        host={"machine": host},
    )


class TestDiffPolicy:
    def test_2x_slowdown_is_flagged(self):
        diff = diff_records(
            {"b": _rec("b", 1.0)}, {"b": _rec("b", 2.0)}
        )
        assert [d.verdict for d in diff.deltas] == ["regression"]
        assert diff.exit_code == 1

    def test_5pct_noise_is_tolerated(self):
        diff = diff_records(
            {"b": _rec("b", 1.0)}, {"b": _rec("b", 1.049)}
        )
        assert diff.deltas[0].verdict == "ok"
        assert diff.exit_code == 0

    def test_absolute_floor_suppresses_tiny_benchmarks(self):
        # 50% slower, but only 0.5 ms in absolute terms: noise.
        diff = diff_records(
            {"b": _rec("b", 0.001)}, {"b": _rec("b", 0.0015)}
        )
        assert diff.deltas[0].verdict == "ok"

    def test_higher_is_better_direction(self):
        base = {"s": _rec("s", 3.0, direction="higher")}
        assert (
            diff_records(base, {"s": _rec("s", 1.5, direction="higher")})
            .deltas[0].verdict
            == "regression"
        )
        assert (
            diff_records(base, {"s": _rec("s", 6.0, direction="higher")})
            .deltas[0].verdict
            == "improvement"
        )

    def test_one_sided_benchmarks_never_fail(self):
        diff = diff_records(
            {"old": _rec("old", 1.0)}, {"new": _rec("new", 1.0)}
        )
        assert sorted(d.verdict for d in diff.deltas) == [
            "baseline-only",
            "current-only",
        ]
        assert diff.exit_code == 0

    def test_cross_host_flagged(self):
        diff = diff_records(
            {"b": _rec("b", 1.0, host="laptop")},
            {"b": _rec("b", 1.0, host="ci")},
        )
        assert diff.deltas[0].cross_host

    def test_custom_tolerance(self):
        base = {"b": _rec("b", 1.0)}
        cur = {"b": _rec("b", 1.2)}
        assert diff_records(base, cur, tolerance=0.5).ok
        assert not diff_records(base, cur, tolerance=0.1).ok
        with pytest.raises(ValueError, match="tolerance"):
            diff_records(base, cur, tolerance=-0.1)

    def test_directory_inputs(self, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        record("b", 1.0, directory=base)
        record("b", 3.0, directory=cur)
        diff = diff_records(base, cur)
        assert diff.deltas[0].verdict == "regression"

    def test_render_mentions_regressions(self):
        diff = diff_records({"b": _rec("b", 1.0)}, {"b": _rec("b", 2.0)})
        out = render_diff(diff)
        assert "regression" in out
        assert "1 regression(s)" in out
        assert "+100.0%" in out
