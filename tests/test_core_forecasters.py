"""Tests for repro.core.forecasters (the NWS battery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forecasters import (
    AdaptiveWindowMean,
    AdaptiveWindowMedian,
    ExponentialSmoothing,
    GradientTracker,
    LastValue,
    RunningMean,
    SlidingMean,
    SlidingMedian,
    TrimmedMeanWindow,
    default_battery,
)

availabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def feed(forecaster, values):
    for v in values:
        forecaster.update(v)
    return forecaster.forecast()


class TestLastValue:
    def test_tracks_last(self):
        assert feed(LastValue(), [0.2, 0.9, 0.4]) == 0.4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LastValue().forecast()

    def test_reset(self):
        f = LastValue()
        f.update(0.5)
        f.reset()
        with pytest.raises(ValueError):
            f.forecast()


class TestRunningMean:
    def test_mean_of_all(self):
        assert feed(RunningMean(), [0.0, 0.5, 1.0]) == pytest.approx(0.5)

    def test_reset(self):
        f = RunningMean()
        f.update(1.0)
        f.reset()
        f.update(0.0)
        assert f.forecast() == 0.0


class TestSlidingWindows:
    def test_sliding_mean_window(self):
        f = SlidingMean(2)
        assert feed(f, [0.0, 0.4, 0.8]) == pytest.approx(0.6)

    def test_sliding_median_window(self):
        f = SlidingMedian(3)
        assert feed(f, [0.9, 0.1, 0.5, 0.2]) == pytest.approx(0.2)

    def test_trimmed_mean(self):
        f = TrimmedMeanWindow(5, 1)
        assert feed(f, [1.0, 0.0, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_names_include_window(self):
        assert SlidingMean(7).name == "sliding_mean_7"
        assert SlidingMedian(9).name == "sliding_median_9"


class TestAdaptiveWindows:
    def test_grows_when_accurate(self):
        f = AdaptiveWindowMean(min_window=2, max_window=50, tolerance=0.1)
        for _ in range(30):
            f.update(0.5)
        assert f._window > 2  # grew on every accurate step

    def test_shrinks_on_level_shift(self):
        f = AdaptiveWindowMean(min_window=2, max_window=50, tolerance=0.05)
        for _ in range(30):
            f.update(0.2)
        grown = f._window
        f.update(0.9)  # big miss
        assert f._window < grown

    def test_median_variant_estimates_median(self):
        f = AdaptiveWindowMedian(min_window=5, max_window=10)
        for v in (0.1, 0.1, 0.9, 0.1, 0.1):
            f.update(v)
        assert f.forecast() == pytest.approx(0.1)

    def test_memory_bounded(self):
        f = AdaptiveWindowMean(min_window=2, max_window=10)
        for i in range(100):
            f.update(i % 2 / 10.0)
        assert len(f._history) <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveWindowMean(min_window=5, max_window=2)
        with pytest.raises(ValueError):
            AdaptiveWindowMean(shrink=1.5)
        with pytest.raises(ValueError):
            AdaptiveWindowMean(tolerance=0.0)


class TestExponentialSmoothing:
    def test_gain_one_is_last_value(self):
        f = ExponentialSmoothing(1.0)
        assert feed(f, [0.3, 0.8]) == pytest.approx(0.8)

    def test_recurrence(self):
        f = ExponentialSmoothing(0.5)
        f.update(0.0)
        f.update(1.0)
        assert f.forecast() == pytest.approx(0.5)
        f.update(1.0)
        assert f.forecast() == pytest.approx(0.75)

    def test_bad_gain_rejected(self):
        for gain in (0.0, -0.2, 1.1):
            with pytest.raises(ValueError):
                ExponentialSmoothing(gain)


class TestGradientTracker:
    def test_step_bounded(self):
        f = GradientTracker(0.05)
        f.update(0.5)
        f.update(1.0)  # large jump, but the move is one step
        assert f.forecast() == pytest.approx(0.55)

    def test_no_overshoot(self):
        f = GradientTracker(0.5)
        f.update(0.5)
        f.update(0.6)  # closer than one step: land exactly
        assert f.forecast() == pytest.approx(0.6)

    def test_tracks_downward(self):
        f = GradientTracker(0.1)
        f.update(0.9)
        f.update(0.0)
        assert f.forecast() == pytest.approx(0.8)

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError):
            GradientTracker(0.0)


class TestDefaultBattery:
    def test_unique_names(self):
        names = [f.name for f in default_battery()]
        assert len(names) == len(set(names))

    def test_reasonable_size(self):
        assert 15 <= len(default_battery()) <= 30

    def test_fresh_instances(self):
        a, b = default_battery(), default_battery()
        a[0].update(0.5)
        with pytest.raises(ValueError):
            b[0].forecast()

    @given(st.lists(availabilities, min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_property_forecasts_within_data_hull(self, values):
        # Every battery member's forecast lies within [min, max] of its
        # inputs -- all are means/medians/level trackers, never
        # extrapolators.
        lo, hi = min(values), max(values)
        for forecaster in default_battery():
            out = feed(forecaster, values)
            assert lo - 1e-9 <= out <= hi + 1e-9, forecaster.name
