"""Tests for repro.workload.profiles (the six-host testbed)."""

import numpy as np
import pytest

from repro.sim.scheduler import RoundRobinScheduler
from repro.workload.profiles import HOST_PROFILES, build_host, profile_names


class TestRegistry:
    def test_six_hosts_in_table_order(self):
        assert profile_names() == [
            "thing2",
            "thing1",
            "conundrum",
            "beowulf",
            "gremlin",
            "kongo",
        ]

    def test_registry_covers_names(self):
        assert set(profile_names()) == set(HOST_PROFILES)

    def test_unknown_host_rejected_with_choices(self):
        with pytest.raises(KeyError, match="known hosts"):
            build_host("nonesuch")


class TestBuildHost:
    @pytest.mark.parametrize("name", profile_names())
    def test_every_profile_runs(self, name):
        host = build_host(name, seed=0)
        host.run_until(600.0)
        k = host.kernel
        assert k.cum_user + k.cum_sys + k.cum_idle == pytest.approx(600.0)

    def test_deterministic_given_seed(self):
        a = build_host("thing1", seed=5)
        b = build_host("thing1", seed=5)
        a.run_until(1800.0)
        b.run_until(1800.0)
        assert a.kernel.cum_user == pytest.approx(b.kernel.cum_user)
        assert a.kernel.load_average == pytest.approx(b.kernel.load_average)

    def test_different_seeds_differ(self):
        a = build_host("thing1", seed=1)
        b = build_host("thing1", seed=2)
        a.run_until(3600.0)
        b.run_until(3600.0)
        assert a.kernel.cum_user != pytest.approx(b.kernel.cum_user, rel=1e-6)

    def test_scheduler_override(self):
        host = build_host("conundrum", seed=0, scheduler=RoundRobinScheduler())
        assert isinstance(host.kernel.scheduler, RoundRobinScheduler)


class TestProfileCharacter:
    def test_conundrum_has_permanent_soaker(self):
        host = build_host("conundrum", seed=0)
        host.run_until(60.0)
        soakers = [p for p in host.kernel.processes if p.nice == 19]
        assert len(soakers) == 1
        assert soakers[0].cpu_demand == float("inf")

    def test_kongo_has_full_priority_hog(self):
        host = build_host("kongo", seed=0)
        host.run_until(60.0)
        hogs = [
            p
            for p in host.kernel.processes
            if p.nice == 0 and p.cpu_demand == float("inf")
        ]
        assert len(hogs) == 1

    def test_busy_hosts_carry_load(self):
        host = build_host("thing2", seed=3)
        host.run_until(4 * 3600.0)
        busy = host.kernel.cum_user + host.kernel.cum_sys
        assert busy / (4 * 3600.0) > 0.1  # thing2 is never near-idle

    def test_servers_lighter_than_workstations(self):
        loads = {}
        for name in ("thing2", "gremlin"):
            host = build_host(name, seed=3)
            host.run_until(4 * 3600.0)
            loads[name] = host.kernel.cum_user + host.kernel.cum_sys
        assert loads["gremlin"] < loads["thing2"]
