"""SMP-specific kernel and sensor behaviour (the ncpu > 1 extension)."""

import pytest

from repro.sensors.loadavg import LoadAverageSensor
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.process import Process


class TestSmpDispatch:
    def test_three_procs_two_cpus_share(self):
        k = Kernel(KernelConfig(ncpu=2))
        procs = [k.spawn(Process(f"p{i}", cpu_demand=40.0)) for i in range(3)]
        k.run_until(70.0)
        # 3 procs on 2 CPUs: each gets ~2/3 of a CPU (quantum rotation
        # leaves a little asymmetry, and whoever finishes first briefly
        # frees capacity for the rest).
        for p in procs:
            assert p.done
            assert p.observed_availability == pytest.approx(2.0 / 3.0, abs=0.09)
        # Work conservation: 120 CPU-seconds over 2 CPUs = 60 s wall.
        assert max(p.end_time for p in procs) == pytest.approx(60.0, abs=1.0)

    def test_load_average_counts_all_runnable(self):
        k = Kernel(KernelConfig(ncpu=4))
        for i in range(3):
            k.spawn(Process(f"hog{i}"))
        k.run_until(400.0)
        # Load average is run-queue length, independent of CPU count.
        assert k.load_average == pytest.approx(3.0, abs=0.05)

    def test_no_multi_dispatch_of_one_process(self):
        # A single process must never consume more than 1 CPU-second per
        # wall second even with idle CPUs available.
        k = Kernel(KernelConfig(ncpu=4))
        p = k.spawn(Process("p"))
        k.run_until(50.0)
        assert p.cpu_time == pytest.approx(50.0, rel=0.01)

    def test_throughput_scales_with_ncpu(self):
        done_counts = {}
        for ncpu in (1, 2):
            k = Kernel(KernelConfig(ncpu=ncpu))
            finished = []
            for i in range(8):
                k.spawn(
                    Process(f"job{i}", cpu_demand=10.0, on_done=finished.append)
                )
            k.run_until(45.0)
            done_counts[ncpu] = len(finished)
        assert done_counts[2] >= 2 * done_counts[1] - 1


class TestSmpSensing:
    def test_plain_formula_underestimates_on_smp(self):
        k = Kernel(KernelConfig(ncpu=4))
        k.spawn(Process("hog"))
        k.run_until(400.0)
        plain = LoadAverageSensor(ncpu_aware=False).read(k).availability
        aware = LoadAverageSensor(ncpu_aware=True).read(k).availability
        # Truth: three CPUs idle -> a newcomer gets a full CPU.
        assert plain == pytest.approx(0.5, abs=0.02)
        assert aware == pytest.approx(1.0, abs=0.02)

    def test_aware_formula_saturates_at_one(self):
        k = Kernel(KernelConfig(ncpu=2))
        k.run_until(10.0)
        assert LoadAverageSensor(ncpu_aware=True).read(k).availability == 1.0

    def test_aware_formula_below_one_when_oversubscribed(self):
        k = Kernel(KernelConfig(ncpu=2))
        for i in range(4):
            k.spawn(Process(f"hog{i}"))
        k.run_until(400.0)
        aware = LoadAverageSensor(ncpu_aware=True).read(k).availability
        # Load 4 on 2 CPUs: newcomer expects 2/(4+1) = 0.4.
        assert aware == pytest.approx(0.4, abs=0.03)
