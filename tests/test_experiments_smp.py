"""Tests for repro.experiments.smp (the multiprocessor extension)."""

import pytest

from repro.experiments.smp import SmpResult, smp_study

DURATION = 2 * 3600.0


class TestSmpStudy:
    @pytest.fixture(scope="class")
    def uni(self):
        return smp_study(1, seed=3, duration=DURATION)

    @pytest.fixture(scope="class")
    def quad(self):
        return smp_study(4, seed=3, duration=DURATION)

    def test_result_structure(self, uni):
        assert isinstance(uni, SmpResult)
        assert uni.ncpu == 1
        assert uni.n >= 5
        assert 0.0 <= uni.mean_truth <= 1.0

    def test_uniprocessor_formulas_coincide(self, uni):
        assert uni.plain_mae == pytest.approx(uni.aware_mae, abs=1e-12)

    def test_smp_aware_formula_wins_on_quad(self, quad):
        assert quad.aware_mae < quad.plain_mae

    def test_plain_formula_underestimates_on_smp(self, quad):
        # On a 4-way box with per-CPU load ~0.5 the truth is ~1.0 while
        # 1/(L+1) reads far below it.
        assert quad.mean_truth > 0.85
        assert quad.plain_mae > 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            smp_study(0)
