"""Streaming/batch parity for the vectorized backtesting engine.

The contract under test is *bit-identity*: ``forecast_series(values,
engine="batch")`` must return exactly the floats the streaming path
returns -- per battery member and for the full mixture -- on every trace
shape the testbed produces.  Comparisons therefore use
``np.array_equal(..., equal_nan=True)``, never ``approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import (
    BatchUnsupported,
    member_forecasts,
    mixture_backtest,
    supports_batch,
)
from repro.core.extra_forecasters import AR1Forecaster, extended_battery
from repro.core.forecasters import (
    LastValue,
    SlidingMedian,
    default_battery,
)
from repro.core.mixture import AdaptiveForecaster, ForecasterBank, forecast_series

RNG = np.random.default_rng(20260806)


def _traces() -> dict[str, np.ndarray]:
    """Seeded trace shapes: smooth, noisy, bursty, constant, and edges.

    Edge lengths bracket every battery window: 1 and 2 (degenerate), the
    largest sliding window +/- 1 (41 +/- 1), and the adaptive maximum
    +/- 1 (100 +/- 1) plus the mixture scoring window boundary (50, 51).
    """
    out = {
        "uniform": RNG.uniform(0.0, 1.0, 1500),
        "bursty": np.clip(
            np.concatenate(
                [RNG.uniform(0.8, 1.0, 700), RNG.uniform(0.0, 0.3, 800)]
            )
            + RNG.normal(0.0, 0.05, 1500),
            0.0,
            1.0,
        ),
        "smooth": np.clip(
            0.6
            + 0.3 * np.sin(np.linspace(0.0, 20.0, 1500))
            + RNG.normal(0.0, 0.02, 1500),
            0.0,
            1.0,
        ),
        "constant": np.full(400, 0.7),
        "ties": np.tile([0.25, 0.75], 300),
    }
    for n in (1, 2, 4, 5, 6, 40, 41, 42, 49, 50, 51, 99, 100, 101):
        out[f"len{n}"] = RNG.uniform(0.0, 1.0, n)
    # NaN-gapped shapes (sensor dropouts): scattered gaps, gaps at the
    # head and tail, contiguous outage blocks, and a fully-lost trace.
    scattered = RNG.uniform(0.0, 1.0, 600)
    scattered[RNG.random(600) < 0.15] = np.nan
    out["gap_scattered"] = scattered
    lead = RNG.uniform(0.0, 1.0, 200)
    lead[:17] = np.nan
    out["gap_lead"] = lead
    tail = RNG.uniform(0.0, 1.0, 200)
    tail[-23:] = np.nan
    out["gap_tail"] = tail
    blocks = RNG.uniform(0.0, 1.0, 500)
    blocks[60:120] = np.nan
    blocks[300:310] = np.nan
    out["gap_blocks"] = blocks
    out["gap_all"] = np.full(40, np.nan)
    return out


TRACES = _traces()


def _assert_identical(a: np.ndarray, b: np.ndarray, label: str) -> None:
    assert np.array_equal(a, b, equal_nan=True), label


class TestMemberParity:
    @pytest.mark.parametrize("trace", sorted(TRACES), ids=str)
    def test_every_default_member_bit_identical(self, trace):
        values = TRACES[trace]
        for stream_member, batch_member in zip(default_battery(), default_battery()):
            expected = forecast_series(values, stream_member, engine="stream")
            got = forecast_series(values, batch_member, engine="batch")
            _assert_identical(expected, got, f"{batch_member.name} on {trace}")

    def test_member_forecasts_leaves_instance_untouched(self):
        member = SlidingMedian(5)
        member_forecasts(member, TRACES["uniform"])
        with pytest.raises(ValueError):
            member.forecast()  # still fresh: no measurements absorbed

    def test_supports_batch_covers_default_battery_only(self):
        assert all(supports_batch(m) for m in default_battery())
        assert not supports_batch(AR1Forecaster())
        assert not all(supports_batch(m) for m in extended_battery())


class TestMixtureParity:
    @pytest.mark.parametrize("trace", sorted(TRACES), ids=str)
    def test_mixture_bit_identical(self, trace):
        values = TRACES[trace]
        expected = forecast_series(values, engine="stream")
        got = forecast_series(values, engine="batch")
        _assert_identical(expected, got, f"mixture on {trace}")

    def test_winner_sequence_matches_streaming_bank(self):
        values = TRACES["bursty"]
        bank = ForecasterBank()
        winners = [-1]
        bank.update(values[0])
        for v in values[1:]:
            winners.append(bank.names.index(bank.best_name()))
            bank.update(v)
        result = mixture_backtest(values, default_battery())
        assert result.names == tuple(bank.names)
        assert result.winners.tolist() == winners
        assert result.n_switches == len(bank.switch_events)

    def test_auto_defaults_to_batch_for_default_mixture(self):
        values = TRACES["smooth"]
        _assert_identical(
            forecast_series(values),
            forecast_series(values, engine="batch"),
            "auto vs batch",
        )

    def test_auto_streams_when_instance_passed(self):
        model = AdaptiveForecaster()
        forecast_series(TRACES["len50"], model)
        # Streaming semantics: the instance absorbed the series.
        assert model.bank.n_updates == TRACES["len50"].size

    def test_custom_error_window_honoured(self):
        values = TRACES["uniform"]
        expected = forecast_series(
            values, AdaptiveForecaster(error_window=7), engine="stream"
        )
        got = forecast_series(
            values, AdaptiveForecaster(error_window=7), engine="batch"
        )
        _assert_identical(expected, got, "error_window=7")


class TestEngineDispatch:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            forecast_series([0.1, 0.2], engine="turbo")

    def test_batch_rejects_unsupported_forecaster(self):
        with pytest.raises(BatchUnsupported):
            forecast_series(TRACES["len5"], AR1Forecaster(), engine="batch")

    def test_batch_rejects_used_member(self):
        member = LastValue()
        member.update(0.5)
        with pytest.raises(BatchUnsupported, match="absorbed"):
            forecast_series(TRACES["len5"], member, engine="batch")

    def test_batch_rejects_used_mixture(self):
        model = AdaptiveForecaster()
        model.update(0.5)
        with pytest.raises(BatchUnsupported, match="absorbed"):
            forecast_series(TRACES["len5"], model, engine="batch")

    def test_stream_accepts_anything(self):
        out = forecast_series(TRACES["len5"], AR1Forecaster(), engine="stream")
        assert out.size == 5

    def test_batch_does_not_mutate_mixture(self):
        model = AdaptiveForecaster()
        forecast_series(TRACES["len50"], model, engine="batch")
        assert model.bank.n_updates == 0

    def test_validation_precedes_dispatch(self):
        # NaN is a valid gap marker now; infinities are still rejected.
        for bad in ([], [[0.1, 0.2]], [0.1, np.inf], [np.nan, -np.inf]):
            with pytest.raises(ValueError):
                forecast_series(bad, engine="batch")

    def test_gap_semantics_hold_last_skip_update(self):
        out = forecast_series(
            [0.5, np.nan, np.nan, 0.7], LastValue(), engine="stream"
        )
        # No forecast before the first finite value; gaps hold the last
        # forecast and do not count as measurements.
        assert np.isnan(out[0])
        assert out[1] == out[2] == out[3] == 0.5


class TestResetRoundTrip:
    """reset() must be equivalent to a fresh instance, battery-wide."""

    @pytest.mark.parametrize(
        "battery", [default_battery, extended_battery], ids=["default", "extended"]
    )
    def test_reset_equals_fresh(self, battery):
        values = RNG.uniform(0.0, 1.0, 300)
        probe = RNG.uniform(0.0, 1.0, 120)
        for used, fresh in zip(battery(), battery()):
            for v in values:
                used.update(v)
            used.reset()
            with pytest.raises(ValueError):
                used.forecast()  # nothing absorbed after reset
            for v in probe:
                used.update(v)
                fresh.update(v)
                assert used.forecast() == fresh.forecast(), used.name

    def test_adaptive_forecaster_reset_round_trip(self):
        values = RNG.uniform(0.0, 1.0, 200)
        used = AdaptiveForecaster()
        forecast_series(values, used, engine="stream")
        used.reset()
        _assert_identical(
            forecast_series(values, used, engine="stream"),
            forecast_series(values, engine="stream"),
            "reset mixture vs fresh mixture",
        )
