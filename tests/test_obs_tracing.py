"""Unit tests for the span/trace API over an injected clock."""

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    traced,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSpans:
    def test_span_records_clock_endpoints(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", host="a"):
            clock.t = 3.5
        (span,) = tracer.spans
        assert span == SpanRecord(
            name="work", start=0.0, end=3.5, status="ok", attrs={"host": "a"}
        )
        assert span.duration == 3.5

    def test_span_marks_error_status_and_reraises(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                clock.t = 1.0
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.end == 1.0

    def test_annotate_from_inside_the_block(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work") as span:
            span.annotate(result=7)
        assert tracer.spans[0].attrs == {"result": 7}

    def test_record_for_event_driven_intervals(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("probe", 10.0, 11.5, availability=0.8)
        (span,) = tracer.spans
        assert (span.start, span.end) == (10.0, 11.5)
        assert span.attrs == {"availability": 0.8}

    def test_retention_drops_oldest(self):
        tracer = Tracer(clock=FakeClock(), max_spans=3)
        for i in range(5):
            tracer.record("s", float(i), float(i))
        assert tracer.dropped == 2
        assert [s.start for s in tracer.spans] == [2.0, 3.0, 4.0]

    def test_max_spans_must_be_positive(self):
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(clock=FakeClock(), max_spans=0)


class TestNullTracer:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert isinstance(get_tracer(), NullTracer)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", k=1) as span:
            span.annotate(x=2)
        NULL_TRACER.record("x", 0.0, 1.0)
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.dropped == 0

    def test_traced_scopes_and_restores(self):
        tracer = Tracer(clock=FakeClock())
        with traced(tracer) as got:
            assert got is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER
