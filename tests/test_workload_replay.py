"""Tests for repro.workload.replay (trace-driven background load)."""

import numpy as np
import pytest

from repro.sensors.loadavg import LoadAverageSensor
from repro.sim.host import SimHost
from repro.trace.series import TraceSeries
from repro.workload.replay import TraceReplayWorkload


def step_trace(levels, step=60.0):
    times = step * np.arange(len(levels))
    return TraceSeries("src", "load_average", times, np.asarray(levels))


class TestValidation:
    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayWorkload(step_trace([0.5]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayWorkload(step_trace([0.5, 1.5]))


class TestReplayFidelity:
    def _replayed_availability(self, levels, settle=240.0, step=300.0):
        """Replay a piecewise-constant trace; sample the load-average
        availability near the end of each segment."""
        host = SimHost("replay", seed=0)
        host.attach(TraceReplayWorkload(step_trace(levels, step)))
        sensor = LoadAverageSensor()
        readings = []
        for i in range(len(levels)):
            host.run_until(i * step + settle + 50.0)
            readings.append(sensor.read(host.kernel).availability)
        return readings

    def test_full_availability_segment(self):
        readings = self._replayed_availability([1.0, 1.0])
        for r in readings:
            assert r == pytest.approx(1.0, abs=0.05)

    def test_half_availability_segment(self):
        # availability 0.5 <=> one competing spinner.
        readings = self._replayed_availability([0.5, 0.5])
        for r in readings:
            assert r == pytest.approx(0.5, abs=0.07)

    def test_third_availability_segment(self):
        readings = self._replayed_availability([1.0 / 3.0, 1.0 / 3.0])
        for r in readings:
            assert r == pytest.approx(1.0 / 3.0, abs=0.07)

    def test_fractional_load_reproduced(self):
        # availability 0.8 <=> implied load 0.25: duty-cycled process.
        readings = self._replayed_availability([0.8, 0.8])
        for r in readings:
            assert r == pytest.approx(0.8, abs=0.1)

    def test_tracks_level_changes(self):
        readings = self._replayed_availability([1.0, 0.5, 1.0])
        assert readings[0] > 0.9
        assert readings[1] == pytest.approx(0.5, abs=0.1)
        assert readings[2] > 0.85


class TestReplayLifecycle:
    def test_stops_at_trace_end(self):
        host = SimHost("replay", seed=0)
        workload = TraceReplayWorkload(step_trace([0.5, 0.5], step=100.0))
        host.attach(workload)
        host.run_until(500.0)
        # After the trace ends, the machine drains to idle.
        assert host.kernel.run_queue_length == 0
        assert workload.samples_replayed == 2

    def test_loop_restarts(self):
        host = SimHost("replay", seed=0)
        workload = TraceReplayWorkload(step_trace([0.5, 0.5], step=100.0), loop=True)
        host.attach(workload)
        host.run_until(850.0)
        assert workload.samples_replayed >= 6
        assert host.kernel.run_queue_length >= 1
