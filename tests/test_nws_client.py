"""NWSClient facade: transport parity, tenancy, keyword-normalized API.

The structural guarantee under test: both transports execute the same
:class:`~repro.nws.service.ServiceCore`, so every payload -- forecasts,
fetch windows, registrations, typed errors -- must be identical whether
the service is an object or a socket away.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nws import (
    ForecastServer,
    NWSClient,
    NWSSystem,
    RegistrationLapsed,
    SeriesUnavailable,
    ServiceCore,
    UnknownTenant,
)
from repro.nws.wire import canonical, encode_fetch, encode_report


def fill(client: NWSClient, series: str = "cpu.a", n: int = 64) -> str:
    rng = np.random.default_rng(3)
    for i in range(n):
        client.publish(series, time=10.0 * i, value=float(rng.random()))
    return series


@pytest.fixture()
def server():
    with ForecastServer(tenants=("default", "hpc")) as srv:
        yield srv


class TestInProcess:
    def test_publish_fetch_query(self):
        with NWSClient.in_process() as client:
            series = fill(client)
            times, values = client.fetch(series)
            assert len(times) == 64
            report = client.query(series)
            assert report.series == series
            assert report.n_measurements == 64
            assert 0.0 <= report.forecast <= 1.0

    def test_fetch_window_keywords(self):
        with NWSClient.in_process() as client:
            series = fill(client)
            times, _ = client.fetch(series, start=100.0, stop=200.0)
            assert times[0] >= 100.0 and times[-1] <= 200.0
            times, _ = client.fetch(series, limit=5)
            assert len(times) == 5

    def test_signatures_are_keyword_only(self):
        with NWSClient.in_process() as client:
            series = fill(client)
            with pytest.raises(TypeError):
                client.publish(series, 640.0, 0.5)
            with pytest.raises(TypeError):
                client.fetch(series, 0.0)
            with pytest.raises(TypeError):
                client.query(series, 3)

    def test_unknown_series_typed(self):
        with NWSClient.in_process() as client:
            with pytest.raises(SeriesUnavailable):
                client.query("nope")

    def test_tenancy_isolated(self):
        core = ServiceCore(tenants=("a", "b"))
        a = NWSClient.in_process(core, tenant="a")
        b = a.for_tenant("b")
        fill(a, "cpu.shared")
        assert b.series_names() == []
        with pytest.raises(UnknownTenant):
            a.for_tenant("c").series_names()

    def test_core_or_kwargs_not_both(self):
        with pytest.raises(ValueError):
            NWSClient.in_process(ServiceCore(), memory_capacity=10)

    def test_registration_lifecycle(self):
        with NWSClient.in_process(clock=lambda: 0.0) as client:
            client.register("sensor.x", "sensor", {"host": "x"}, ttl=30.0)
            assert [r.name for r in client.lookup("sensor")] == ["sensor.x"]
            client.refresh("sensor.x", ttl=60.0)
            with pytest.raises(RegistrationLapsed):
                client.refresh("sensor.never", ttl=60.0)


class TestForSystem:
    def test_adopts_live_state(self):
        system = NWSSystem(["thing1"], seed=2)
        system.advance(600.0)
        client = system.client()
        series = system.series_name("thing1")
        report = client.query(series)
        direct = system.forecaster.query(series)
        assert report.forecast == direct.forecast
        assert series in client.series_names()

    def test_client_is_cached(self):
        system = NWSSystem(["thing1"], seed=2)
        assert system.client() is system.client()


class TestTransportParity:
    def test_payloads_identical(self, server):
        local = NWSClient.in_process()
        remote = NWSClient.connect(server.url)
        rng = np.random.default_rng(9)
        stamps = [(10.0 * i, float(rng.random())) for i in range(96)]
        for client in (local, remote):
            for t, v in stamps:
                client.publish("cpu.par", time=t, value=v)
            client.register("sensor.par", "sensor", {"host": "par"}, ttl=1e9)

        local_report = local.query("cpu.par", horizon=3)
        remote_report = remote.query("cpu.par", horizon=3)
        assert canonical(encode_report(local_report)) == canonical(
            encode_report(remote_report)
        )

        lt, lv = local.fetch("cpu.par", start=100.0, limit=17)
        rt, rv = remote.fetch("cpu.par", start=100.0, limit=17)
        assert canonical(encode_fetch("cpu.par", lt, lv)) == canonical(
            encode_fetch("cpu.par", rt, rv)
        )
        assert rt.dtype == np.float64 and rv.dtype == np.float64

        assert local.series_names() == remote.series_names()
        assert [r.name for r in local.lookup("sensor")] == [
            r.name for r in remote.lookup("sensor")
        ]
        remote.close()

    def test_query_all_parity(self, server):
        local = NWSClient.in_process()
        remote = NWSClient.connect(server.url)
        for client in (local, remote):
            fill(client, "cpu.a", 32)
            fill(client, "cpu.b", 32)
        local_all = local.query_all()
        remote_all = remote.query_all()
        assert set(local_all) == set(remote_all) == {"cpu.a", "cpu.b"}
        for name in local_all:
            assert canonical(encode_report(local_all[name])) == canonical(
                encode_report(remote_all[name])
            )
        remote.close()

    def test_typed_errors_identical(self, server):
        remote = NWSClient.connect(server.url)
        with pytest.raises(SeriesUnavailable) as info:
            remote.query("cpu.ghost")
        assert info.value.series == "cpu.ghost"
        with pytest.raises(UnknownTenant) as info:
            remote.for_tenant("nobody").series_names()
        assert info.value.tenant == "nobody"
        assert "default" in info.value.known
        with pytest.raises(RegistrationLapsed):
            remote.refresh("sensor.ghost", ttl=5.0)
        with pytest.raises(ValueError):
            remote.query("cpu.ghost", horizon=0)
        remote.close()

    def test_http_tenancy(self, server):
        remote = NWSClient.connect(server.url, tenant="hpc")
        fill(remote, "cpu.hpc-only", 16)
        assert remote.series_names() == ["cpu.hpc-only"]
        assert remote.for_tenant("default").series_names() == []
        health = remote.health()
        assert health["tenants"]["hpc"]["series"] == 1
        remote.close()

    def test_connect_rejects_non_http(self):
        with pytest.raises(ValueError):
            NWSClient.connect("ftp://example:1")
