"""Acceptance tests for the chaos harness (repro.experiments.chaos).

The headline contract: under 10% sensor dropout plus a crash/restart
window, the faulted system still produces a forecast at every scheduled
step, and the report is byte-identical across reruns and worker counts.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.chaos import run_chaos
from repro.faults import FaultPlan, named_plan
from repro.workload.profiles import profile_names

#: Short replay used where full acceptance scale is not the point.
SHORT = dict(seed=7, duration=900.0, step=60.0)


class TestChaosAcceptance:
    @pytest.fixture(scope="class")
    def report(self):
        # The acceptance scenario: six-host testbed, 10% dropout plus one
        # crash/restart window on thing1 (down 1800 s..2400 s).
        return run_chaos(
            named_plan("dropout10-crash"), seed=7, duration=3600.0, step=60.0
        )

    def test_forecast_served_every_step_on_every_host(self, report):
        assert report.all_served
        for host in report.hosts:
            assert host.steps == 60
            assert host.served == 60

    def test_covers_the_whole_testbed(self, report):
        assert [h.host for h in report.hosts] == profile_names()

    def test_crashed_host_served_stale(self, report):
        by_host = {h.host: h for h in report.hosts}
        # thing1 keeps answering through its 600 s outage from
        # last-known-good data, stale-marked.
        assert by_host["thing1"].degraded > 0
        assert by_host["thing2"].degraded == 0

    def test_error_inflation_reported(self, report):
        assert math.isfinite(report.mean_inflation_pct())
        for host in report.hosts:
            assert host.mae_clean > 0.0
            assert math.isfinite(host.mae_faulted)

    def test_fault_events_accounted(self, report):
        injected = report._events("injected")
        assert injected["sensor_dropout"] > 0
        assert injected["crash_lost"] > 0
        assert report._events("absorbed")["ttl_reregistered"] > 0

    def test_rerun_is_byte_identical(self, report):
        again = run_chaos(
            named_plan("dropout10-crash"), seed=7, duration=3600.0, step=60.0
        )
        assert again.render() == report.render()
        assert again == report

    def test_jobs_do_not_change_the_report(self, report):
        pooled = run_chaos(
            named_plan("dropout10-crash"),
            seed=7,
            duration=3600.0,
            step=60.0,
            jobs=4,
        )
        assert pooled.render() == report.render()
        assert pooled == report

    def test_render_shape(self, report):
        text = report.render()
        assert text.startswith("chaos plan 'dropout10-crash' seed=7")
        assert "forecast served every step: yes" in text
        assert "mean error inflation:" in text


class TestChaosHarness:
    def test_fault_free_plan_inflates_nothing(self):
        report = run_chaos(FaultPlan("none"), profiles=["thing2"], **SHORT)
        (host,) = report.hosts
        assert host.mae_faulted == pytest.approx(host.mae_clean)
        assert host.injected == {}
        assert host.degraded == 0

    def test_profiles_subset_respected(self):
        report = run_chaos(
            named_plan("dropout10"), profiles=["kongo", "thing1"], **SHORT
        )
        assert [h.host for h in report.hosts] == ["kongo", "thing1"]

    def test_seed_changes_the_weather(self):
        a = run_chaos(named_plan("dropout10"), profiles=["thing1"], **SHORT)
        b = run_chaos(
            named_plan("dropout10"), profiles=["thing1"], seed=8,
            duration=900.0, step=60.0,
        )
        assert a.render() != b.render()

    def test_duration_shorter_than_step_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            run_chaos(FaultPlan("none"), duration=30.0, step=60.0)
