"""Tests for repro.analysis.residuals (the paper's omitted analysis)."""

import numpy as np
import pytest

from repro.analysis.residuals import (
    ResidualComparison,
    bootstrap_mae_difference,
    compare_residuals,
)


def make_data(n=200, noise_a=0.05, noise_b=0.05, seed=0):
    rng = np.random.default_rng(seed)
    truth = np.clip(0.6 + 0.1 * rng.standard_normal(n), 0, 1)
    a = truth + noise_a * rng.standard_normal(n)
    b = truth + noise_b * rng.standard_normal(n)
    return a, b, truth


class TestCompareResiduals:
    def test_equal_noise_not_significant(self):
        a, b, truth = make_data()
        result = compare_residuals(a, b, truth)
        assert isinstance(result, ResidualComparison)
        assert not result.significant
        assert "no significant" in result.verdict()
        assert result.ci_low < 0.0 < result.ci_high

    def test_clearly_better_estimator_detected(self):
        a, b, truth = make_data(noise_a=0.02, noise_b=0.15)
        result = compare_residuals(a, b, truth)
        assert result.significant
        assert result.mae_difference < 0.0
        assert "estimator A" in result.verdict()
        assert result.ci_high < 0.0

    def test_direction_symmetric(self):
        a, b, truth = make_data(noise_a=0.15, noise_b=0.02)
        result = compare_residuals(a, b, truth)
        assert result.significant
        assert result.mae_difference > 0.0
        assert "estimator B" in result.verdict()

    def test_identical_estimators_tie(self):
        a, _, truth = make_data()
        result = compare_residuals(a, a, truth)
        assert np.isnan(result.wilcoxon_p)
        assert not result.significant
        assert result.mae_difference == 0.0

    def test_mae_fields_match_inputs(self):
        a, b, truth = make_data()
        result = compare_residuals(a, b, truth)
        assert result.mae_a == pytest.approx(np.abs(a - truth).mean())
        assert result.mae_b == pytest.approx(np.abs(b - truth).mean())
        assert result.n == truth.size

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_residuals([0.1], [0.1], [0.1])
        with pytest.raises(ValueError):
            compare_residuals([0.1] * 10, [0.1] * 9, [0.1] * 10)


class TestBootstrap:
    def test_reproducible_with_seed(self):
        a, b, truth = make_data()
        ci1 = bootstrap_mae_difference(a - truth, b - truth, rng=5)
        ci2 = bootstrap_mae_difference(a - truth, b - truth, rng=5)
        assert ci1 == ci2

    def test_interval_ordered_and_centered(self):
        a, b, truth = make_data(noise_a=0.02, noise_b=0.15)
        lo, hi = bootstrap_mae_difference(a - truth, b - truth)
        assert lo < hi
        observed = np.abs(a - truth).mean() - np.abs(b - truth).mean()
        assert lo <= observed <= hi

    def test_confidence_widens_interval(self):
        a, b, truth = make_data()
        lo95, hi95 = bootstrap_mae_difference(a - truth, b - truth, confidence=0.95)
        lo99, hi99 = bootstrap_mae_difference(a - truth, b - truth, confidence=0.99)
        assert lo99 <= lo95 and hi99 >= hi95

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mae_difference([0.1], [0.1])
        with pytest.raises(ValueError):
            bootstrap_mae_difference([0.1, 0.2], [0.1, 0.2], confidence=1.5)


class TestOnTestbedData:
    def test_paper_omitted_analysis(self, thing1_run):
        """The analysis the paper skipped: is the forecast significantly
        more accurate than the raw measurement?  (Expected: mostly not.)"""
        from repro.core.mixture import forecast_series

        series = thing1_run.series["load_average"]
        forecasts = forecast_series(series.values)
        pre, fc, truth = [], [], []
        for obs in thing1_run.observations:
            i = int(np.searchsorted(series.times, obs.start_time, side="right")) - 1
            if i < 0 or i + 1 >= forecasts.size or np.isnan(forecasts[i + 1]):
                continue
            pre.append(obs.premeasurements["load_average"])
            fc.append(forecasts[i + 1])
            truth.append(obs.observed)
        result = compare_residuals(fc, pre, truth)
        # Forecast and measurement accuracies are approximately the same:
        # the MAE difference is tiny even if occasionally "significant".
        assert abs(result.mae_difference) < 0.03
