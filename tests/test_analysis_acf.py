"""Tests for repro.analysis.acf."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.acf import acf, acf_confidence_band, integrated_acf_time


class TestAcf:
    def test_lag_zero_is_one(self, rng):
        x = rng.normal(size=500)
        assert acf(x, nlags=10)[0] == 1.0

    def test_white_noise_is_small_beyond_lag_zero(self, rng):
        x = rng.normal(size=20_000)
        rho = acf(x, nlags=50)
        band = acf_confidence_band(x.size, level=0.999)
        assert np.all(np.abs(rho[1:]) < 3 * band)

    def test_ar1_matches_theory(self, rng):
        phi = 0.8
        n = 60_000
        eps = rng.normal(size=n)
        x = np.empty(n)
        x[0] = eps[0]
        for t in range(1, n):
            x[t] = phi * x[t - 1] + eps[t]
        rho = acf(x, nlags=5)
        for k in range(1, 6):
            assert rho[k] == pytest.approx(phi**k, abs=0.03)

    def test_fft_and_direct_agree(self, rng):
        x = rng.normal(size=777)
        np.testing.assert_allclose(
            acf(x, nlags=60, fft=True), acf(x, nlags=60, fft=False), atol=1e-10
        )

    def test_lags_beyond_series_length_are_zero(self, rng):
        x = rng.normal(size=20)
        rho = acf(x, nlags=50)
        assert rho.shape == (51,)
        assert np.all(rho[20:] == 0.0)

    def test_values_bounded_by_one(self, rng):
        x = rng.normal(size=300).cumsum()  # strongly correlated series
        rho = acf(x, nlags=100)
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)

    def test_constant_series_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            acf(np.ones(100), nlags=10)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            acf([1.0, np.nan, 2.0], nlags=2)

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            acf(np.ones((3, 3)), nlags=2)

    def test_bad_nlags_rejected(self, rng):
        with pytest.raises(ValueError):
            acf(rng.normal(size=10), nlags=0)

    @given(st.integers(min_value=10, max_value=200), st.integers(min_value=1, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_property_bounded_and_unit_at_zero(self, n, nlags):
        gen = np.random.default_rng(n * 1000 + nlags)
        x = gen.normal(size=n)
        rho = acf(x, nlags=nlags)
        assert rho[0] == 1.0
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)


class TestConfidenceBand:
    def test_scales_as_inverse_sqrt_n(self):
        assert acf_confidence_band(400) == pytest.approx(
            acf_confidence_band(100) / 2.0
        )

    def test_95_percent_value(self):
        assert acf_confidence_band(100, level=0.95) == pytest.approx(0.196, abs=1e-3)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            acf_confidence_band(100, level=1.5)

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            acf_confidence_band(0)


class TestIntegratedAcfTime:
    def test_white_noise_near_one(self, rng):
        x = rng.normal(size=30_000)
        assert integrated_acf_time(x) == pytest.approx(1.0, abs=0.25)

    def test_correlated_series_much_larger(self, rng):
        # AR(1) with phi=0.9 has integrated time (1+phi)/(1-phi) = 19.
        phi = 0.9
        n = 60_000
        eps = rng.normal(size=n)
        x = np.empty(n)
        x[0] = eps[0]
        for t in range(1, n):
            x[t] = phi * x[t - 1] + eps[t]
        tau = integrated_acf_time(x)
        assert 10.0 < tau < 30.0

    def test_max_lag_cap(self, rng):
        x = rng.normal(size=1000).cumsum()
        assert integrated_acf_time(x, max_lag=5) <= 11.0
