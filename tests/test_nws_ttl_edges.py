"""TTL edge cases of the name server: expiry is the NWS crash detector,
so behaviour exactly at the deadline and across lapse/restart matters."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.nws.errors import RegistrationLapsed
from repro.nws.memory import MemoryStore  # lint: ignore[API001] -- unit-tests the data plane itself
from repro.nws.nameserver import NameServer
from repro.nws.sensorhost import SensorHost
from repro.nws.system import NWSSystem
from repro.obs import MetricsRegistry, installed


def clocked():
    clock = {"t": 0.0}
    return clock, NameServer(clock=lambda: clock["t"])


class TestExpiryBoundary:
    def test_refresh_exactly_at_expiry_is_dead(self):
        # Expiry is inclusive (expires_at <= now): at t == expires_at the
        # registration has lapsed and cannot be refreshed -- a sensor that
        # arrives exactly on the deadline missed it.
        clock, ns = clocked()
        ns.register("sensor.cpu.a", "sensor", ttl=30.0)
        clock["t"] = 30.0
        with pytest.raises(RegistrationLapsed, match="sensor.cpu.a"):
            ns.refresh("sensor.cpu.a", ttl=30.0)

    def test_refresh_one_tick_before_expiry_lives(self):
        clock, ns = clocked()
        ns.register("sensor.cpu.a", "sensor", ttl=30.0)
        clock["t"] = 29.999
        ns.refresh("sensor.cpu.a", ttl=30.0)
        clock["t"] = 59.0
        assert ns.get("sensor.cpu.a").expires_at == pytest.approx(59.999)

    def test_lookup_racing_expiry_purges_the_entry(self):
        clock, ns = clocked()
        ns.register("sensor.cpu.a", "sensor", ttl=30.0)
        clock["t"] = 30.0
        assert ns.lookup("sensor") == []
        # The lookup garbage-collected the lapsed entry, not just hid it.
        assert len(ns._entries) == 0
        with pytest.raises(RegistrationLapsed):
            ns.get("sensor.cpu.a")

    def test_len_counts_only_live(self):
        clock, ns = clocked()
        ns.register("sensor.cpu.a", "sensor", ttl=30.0)
        ns.register("memory.main", "memory")  # no TTL: immortal
        assert len(ns) == 2
        clock["t"] = 30.0
        assert len(ns) == 1

    def test_reregistration_after_lapse_restores_discovery(self):
        clock, ns = clocked()
        ns.register("sensor.cpu.a", "sensor", {"v": "1"}, ttl=30.0)
        clock["t"] = 45.0
        assert ns.lookup("sensor") == []
        # register() is the restart path: lapsed names are not poisoned.
        ns.register("sensor.cpu.a", "sensor", {"v": "2"}, ttl=30.0)
        (entry,) = ns.lookup("sensor")
        assert entry.attributes["v"] == "2"
        assert entry.expires_at == pytest.approx(75.0)


class TestSensorHostLapseRecovery:
    def test_pump_reregisters_after_lapse_and_counts_it(self):
        # Advance steps coarser than the TTL lapse the registration
        # between pumps; the host must detect that and re-register.
        with installed(MetricsRegistry()) as registry:
            clock = {"t": 0.0}
            ns = NameServer(clock=lambda: clock["t"])
            host = SensorHost("thing1", ns, MemoryStore(), seed=3)
            assert ns.get(host.sensor_name)  # registered at construction
            clock["t"] = 120.0  # TTL is 30 s: long lapsed
            with pytest.raises(RegistrationLapsed):
                ns.get(host.sensor_name)
            host.pump(120.0)
            assert ns.get(host.sensor_name).expires_at == pytest.approx(150.0)
        snap = registry.snapshot()
        lapses = snap["repro_nws_ttl_lapses_total"]["samples"][0]
        assert lapses["labels"] == {"host": "thing1"}
        assert lapses["value"] >= 1.0

    def test_crash_window_lapses_then_restart_reregisters(self):
        plan = FaultPlan("p").crash(start=100.0, duration=100.0, host="thing1")
        system = NWSSystem(["thing1"], seed=3, fault_plan=plan)
        system.advance(90.0)
        assert system.cpu_sensors() == ["sensor.cpu.thing1"]
        system.advance(150.0)  # mid-crash: TTL (30 s) has lapsed
        assert system.cpu_sensors() == []
        system.advance(260.0)  # restarted: pump re-registers
        assert system.cpu_sensors() == ["sensor.cpu.thing1"]
        faults = system.hosts[0].faults
        assert faults.counts("absorbed").get("ttl_reregistered", 0) >= 1
        assert faults.counts("injected").get("crash_lost", 0) > 0
