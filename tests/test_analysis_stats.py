"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import exponential_smooth, running_mean, summarize


class TestSummarize:
    def test_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.variance == pytest.approx(1.25)  # population variance
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)
        assert s.std == pytest.approx(np.sqrt(1.25))

    def test_single_sample(self):
        s = summarize([7.0])
        assert s.n == 1 and s.variance == 0.0 and s.median == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestExponentialSmooth:
    def test_alpha_one_is_identity(self, rng):
        x = rng.normal(size=50)
        np.testing.assert_allclose(exponential_smooth(x, 1.0), x)

    def test_recurrence(self):
        x = np.array([0.0, 1.0, 1.0])
        out = exponential_smooth(x, 0.5)
        np.testing.assert_allclose(out, [0.0, 0.5, 0.75])

    def test_initial_value(self):
        out = exponential_smooth([1.0], 0.5, initial=3.0)
        assert out[0] == pytest.approx(2.0)

    def test_converges_to_constant(self):
        out = exponential_smooth(np.full(200, 5.0), 0.1, initial=0.0)
        assert out[-1] == pytest.approx(5.0, abs=1e-6)

    def test_bad_alpha_rejected(self):
        for alpha in (0.0, -1.0, 1.5):
            with pytest.raises(ValueError):
                exponential_smooth([1.0, 2.0], alpha)


class TestRunningMean:
    def test_values(self):
        np.testing.assert_allclose(
            running_mean([2.0, 4.0, 6.0]), [2.0, 3.0, 4.0]
        )

    def test_last_equals_full_mean(self, rng):
        x = rng.normal(size=100)
        assert running_mean(x)[-1] == pytest.approx(x.mean())
