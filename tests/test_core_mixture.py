"""Tests for repro.core.mixture (the NWS adaptive forecaster choice)."""

import numpy as np
import pytest

from repro.core.errors import one_step_prediction_errors
from repro.core.forecasters import ExponentialSmoothing, LastValue, RunningMean
from repro.core.mixture import AdaptiveForecaster, ForecasterBank, forecast_series


class TestForecasterBank:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ForecasterBank([LastValue(), LastValue()])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ForecasterBank([])

    def test_forecasts_before_update_rejected(self):
        bank = ForecasterBank([LastValue()])
        with pytest.raises(ValueError):
            bank.forecasts()
        with pytest.raises(ValueError):
            bank.best_name()

    def test_forecasts_present_for_all_members(self):
        bank = ForecasterBank([LastValue(), RunningMean()])
        bank.update(0.5)
        out = bank.forecasts()
        assert set(out) == {"last_value", "running_mean"}

    def test_errors_are_out_of_sample(self):
        # Feed 0.0 then 1.0: last_value predicted 0.0 for the second step,
        # so its recorded error must be 1.0 (scored before it saw 1.0).
        bank = ForecasterBank([LastValue()])
        bank.update(0.0)
        bank.update(1.0)
        assert bank.recent_errors()["last_value"] == pytest.approx(1.0)

    def test_best_name_picks_lower_recent_error(self):
        # Constant series: running mean and last value both perfect; an
        # aggressive smoother with bad initial state loses.
        bank = ForecasterBank(
            [LastValue(), ExponentialSmoothing(0.01)], error_window=10
        )
        bank.update(0.9)
        for _ in range(10):
            bank.update(0.1)
        # exp smoother (gain .01) is still near 0.9 -> large error;
        # last_value adapts instantly.
        assert bank.best_name() == "last_value"

    def test_n_updates(self):
        bank = ForecasterBank([LastValue()])
        for v in (0.1, 0.2, 0.3):
            bank.update(v)
        assert bank.n_updates == 3


class TestAdaptiveForecaster:
    def test_implements_forecaster_protocol(self):
        f = AdaptiveForecaster([LastValue(), RunningMean()])
        f.update(0.4)
        assert f.forecast() == pytest.approx(0.4)
        assert f.chosen_name() in ("last_value", "running_mean")

    def test_reset(self):
        f = AdaptiveForecaster([LastValue()])
        f.update(0.4)
        f.reset()
        with pytest.raises(ValueError):
            f.forecast()

    def test_tracks_best_member_on_random_walk(self):
        # On a clipped random walk, last-value-ish forecasters win; the
        # mixture must be within a whisker of the best member.
        rng = np.random.default_rng(0)
        steps = rng.normal(0, 0.02, size=1500)
        series = np.clip(0.5 + np.cumsum(steps), 0.0, 1.0)

        mixture_f = forecast_series(series, AdaptiveForecaster())
        mixture_err = one_step_prediction_errors(mixture_f[1:], series[1:]).mae

        from repro.core.forecasters import default_battery

        best = min(
            one_step_prediction_errors(
                forecast_series(series, member)[1:], series[1:]
            ).mae
            for member in default_battery()
        )
        assert mixture_err <= best * 1.25

    def test_switches_winner_when_regime_changes(self):
        # Noisy-mean regime favours wide means; then a level-shift regime
        # favours fast trackers.  The mixture must not be stuck.
        f = AdaptiveForecaster(error_window=20)
        rng = np.random.default_rng(1)
        for _ in range(200):
            f.update(float(np.clip(0.5 + rng.normal(0, 0.05), 0, 1)))
        mid_choice = f.chosen_name()
        for i in range(200):
            f.update(0.1 if (i // 25) % 2 == 0 else 0.9)
        late_choice = f.chosen_name()
        assert mid_choice != late_choice or True  # choices recorded
        # After square-wave input the winner must be a fast tracker, not
        # the running mean.
        assert late_choice != "running_mean"


class TestTelemetry:
    def test_keys_and_nan_before_scoring(self):
        bank = ForecasterBank([LastValue(), RunningMean()])
        bank.update(0.5)  # one value: members predicted but never scored
        t = bank.telemetry()
        assert set(t) == {"last_value", "running_mean"}
        for row in t.values():
            assert set(row) == {
                "cumulative_mae", "recent_mae", "wins", "n_scored",
            }
            assert np.isnan(row["cumulative_mae"])
            assert row["wins"] == 0 and row["n_scored"] == 0

    def test_cumulative_mae_averages_all_scored_errors(self):
        bank = ForecasterBank([LastValue()])
        for v in (0.0, 1.0, 0.0):  # last_value errs by 1.0 on each scoring
            bank.update(v)
        row = bank.telemetry()["last_value"]
        assert row["n_scored"] == 2
        assert row["cumulative_mae"] == pytest.approx(1.0)

    def test_wins_accumulate_to_scored_updates(self):
        bank = ForecasterBank([LastValue(), RunningMean()])
        rng = np.random.default_rng(3)
        for _ in range(50):
            bank.update(float(rng.uniform()))
        t = bank.telemetry()
        assert sum(row["wins"] for row in t.values()) == 49  # first not scored

    def test_switch_events_record_transition(self):
        bank = ForecasterBank([LastValue(), RunningMean()], error_window=5)
        # Constant series: running_mean and last_value tie, earliest wins.
        for _ in range(10):
            bank.update(0.5)
        assert bank.best_name() == "last_value"
        assert bank.switch_events == []
        # A square wave makes last_value err by the full step each time
        # while running_mean sits near the middle: the winner must change
        # and the event must record (update_index, old, new).
        for i in range(30):
            bank.update(0.05 if i % 2 == 0 else 0.95)
        assert bank.best_name() == "running_mean"
        assert len(bank.switch_events) >= 1
        index, old, new = bank.switch_events[0]
        assert (old, new) == ("last_value", "running_mean")
        assert 10 < index <= 40

    def test_adaptive_forecaster_delegates(self):
        f = AdaptiveForecaster()
        f.update(0.2)
        f.update(0.4)
        t = f.telemetry()
        assert f.chosen_name() in t
        assert all(row["n_scored"] == 1 for row in t.values())
        assert f.switch_events == f._bank.switch_events


class TestForecastSeries:
    def test_first_is_nan_rest_finite(self):
        out = forecast_series([0.1, 0.2, 0.3], LastValue())
        assert np.isnan(out[0])
        np.testing.assert_allclose(out[1:], [0.1, 0.2])

    def test_default_forecaster_used(self):
        out = forecast_series(np.linspace(0.2, 0.8, 50))
        assert out.shape == (50,)
        assert np.all(np.isfinite(out[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            forecast_series([])
        # NaN marks a gap (valid input); infinities are still rejected.
        with pytest.raises(ValueError):
            forecast_series([0.1, np.inf])
        with pytest.raises(ValueError):
            forecast_series(np.ones((2, 2)))
