"""Wire-format guarantees: golden bytes, version gates, error envelopes.

The golden fixtures pin the canonical encodings byte-for-byte: any
change to them is a wire-format break and must bump ``WIRE_VERSION``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.faults.policy import RetryError
from repro.nws.errors import RegistrationLapsed, SeriesUnavailable, UnknownTenant
from repro.nws.forecaster import ForecastReport
from repro.nws.nameserver import Registration
from repro.nws.wire import (
    ERROR_STATUS,
    WIRE_VERSION,
    ProtocolError,
    canonical,
    code_for_exception,
    decode_fetch,
    decode_registration,
    decode_report,
    encode_fetch,
    encode_registration,
    encode_report,
    envelope_for_exception,
    error_envelope,
    raise_for_envelope,
)

REPORT = ForecastReport(
    series="cpu.thing1.nws_hybrid",
    forecast=0.875,
    error=0.0125,
    method="adaptive_median_5_100",
    n_measurements=720,
    as_of=7190.0,
    stale=False,
    horizon=1,
)

#: Golden canonical bytes.  Changing any of these is a wire break.
GOLDEN_REPORT = (
    b'{"as_of":7190.0,"error":0.0125,"forecast":0.875,"horizon":1,'
    b'"kind":"forecast","method":"adaptive_median_5_100",'
    b'"n_measurements":720,"series":"cpu.thing1.nws_hybrid",'
    b'"stale":false,"version":1}\n'
)
GOLDEN_FETCH = (
    b'{"kind":"samples","n":2,"series":"cpu.a","times":[0.0,10.0],'
    b'"values":[0.5,null],"version":1}\n'
)
GOLDEN_REGISTRATION = (
    b'{"attributes":{"host":"thing1","resource":"cpu"},'
    b'"component":"sensor","kind":"registration",'
    b'"name":"sensor.cpu.thing1","version":1}\n'
)
GOLDEN_ERROR = (
    b'{"error":{"code":"series_unavailable","known":["cpu.a"],'
    b'"message":"gone","series":"cpu.b"},"version":1}\n'
)


class TestGoldenBytes:
    def test_report(self):
        assert canonical(encode_report(REPORT)) == GOLDEN_REPORT

    def test_fetch(self):
        payload = encode_fetch("cpu.a", [0.0, 10.0], [0.5, float("nan")])
        assert canonical(payload) == GOLDEN_FETCH

    def test_registration(self):
        reg = Registration(
            name="sensor.cpu.thing1",
            kind="sensor",
            attributes={"resource": "cpu", "host": "thing1"},
        )
        assert canonical(encode_registration(reg)) == GOLDEN_REGISTRATION

    def test_error_envelope(self):
        envelope = error_envelope(
            "series_unavailable", "gone", series="cpu.b", known=["cpu.a"]
        )
        assert canonical(envelope) == GOLDEN_ERROR

    def test_canonical_is_order_insensitive(self):
        a = canonical({"b": 1, "a": 2})
        b = canonical({"a": 2, "b": 1})
        assert a == b


class TestRoundTrips:
    def test_report(self):
        assert decode_report(encode_report(REPORT)) == REPORT

    def test_report_nan_error_bar(self):
        report = ForecastReport(
            series="s",
            forecast=0.5,
            error=float("nan"),
            method="last_value",
            n_measurements=1,
            as_of=float("nan"),
        )
        out = decode_report(json.loads(canonical(encode_report(report))))
        assert math.isnan(out.error) and math.isnan(out.as_of)
        assert out.forecast == 0.5

    def test_report_horizon_default(self):
        payload = encode_report(REPORT)
        del payload["horizon"]
        assert decode_report(payload).horizon == 1

    def test_fetch(self):
        times, values = decode_fetch(
            json.loads(canonical(encode_fetch("s", [1.0, 2.0], [0.1, 0.2])))
        )
        assert times == [1.0, 2.0]
        assert values == [0.1, 0.2]

    def test_registration_hides_expiry(self):
        reg = Registration(
            name="n", kind="sensor", attributes={"a": "b"}, expires_at=123.0
        )
        payload = encode_registration(reg)
        assert "expires_at" not in canonical(payload).decode()
        out = decode_registration(payload)
        assert (out.name, out.kind, out.attributes) == ("n", "sensor", {"a": "b"})

    def test_version_gate(self):
        payload = encode_report(REPORT)
        payload["version"] = 999
        with pytest.raises(ProtocolError, match="version"):
            decode_report(payload)
        with pytest.raises(ProtocolError, match="version"):
            decode_fetch({"version": None, "times": [], "values": []})

    def test_malformed_payloads(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_report({"version": WIRE_VERSION})
        with pytest.raises(ProtocolError, match="mismatch"):
            decode_fetch({"version": WIRE_VERSION, "times": [1.0], "values": []})
        with pytest.raises(ProtocolError, match="malformed"):
            decode_registration({"version": WIRE_VERSION, "name": "x"})


class TestErrorEnvelopes:
    @pytest.mark.parametrize(
        "exc,code,status",
        [
            (SeriesUnavailable("cpu.b", ["cpu.a"]), "series_unavailable", 404),
            (RegistrationLapsed("sensor.x"), "registration_lapsed", 410),
            (UnknownTenant("t", ["default"]), "unknown_tenant", 403),
            (RetryError("gave up"), "retry_exhausted", 503),
            (ValueError("bad horizon"), "bad_request", 400),
            (LookupError("no such route"), "not_found", 404),
            (RuntimeError("boom"), "internal", 500),
        ],
    )
    def test_status_mapping(self, exc, code, status):
        assert code_for_exception(exc) == code
        got_status, envelope = envelope_for_exception(exc)
        assert got_status == status == ERROR_STATUS[code]
        assert envelope["error"]["code"] == code

    @pytest.mark.parametrize(
        "exc,expected",
        [
            (SeriesUnavailable("cpu.b", ["cpu.a"]), SeriesUnavailable),
            (RegistrationLapsed("sensor.x"), RegistrationLapsed),
            (UnknownTenant("t", ["default"]), UnknownTenant),
            (RetryError("gave up"), RetryError),
            (ValueError("bad horizon"), ValueError),
            (LookupError("no such route"), LookupError),
            (RuntimeError("boom"), ProtocolError),
        ],
    )
    def test_round_trip_reconstructs_type(self, exc, expected):
        status, envelope = envelope_for_exception(exc)
        # Simulate the wire: bytes out, JSON back in.
        envelope = json.loads(canonical(envelope))
        with pytest.raises(expected):
            raise_for_envelope(status, envelope)

    def test_series_unavailable_details_survive(self):
        status, envelope = envelope_for_exception(
            SeriesUnavailable("cpu.b", ["cpu.z", "cpu.a"])
        )
        envelope = json.loads(canonical(envelope))
        with pytest.raises(SeriesUnavailable) as info:
            raise_for_envelope(status, envelope)
        assert info.value.series == "cpu.b"
        assert list(info.value.known) == ["cpu.a", "cpu.z"]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            error_envelope("nonsense", "msg")

    def test_malformed_envelope(self):
        with pytest.raises(ProtocolError, match="malformed"):
            raise_for_envelope(500, {"version": WIRE_VERSION, "error": "boom"})
