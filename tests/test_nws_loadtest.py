"""Loadtest harness: deterministic reports, jobs-invariance, parity.

The acceptance property under test: the rendered report (and its
combined digest) is a pure function of the :class:`LoadtestConfig` --
identical across reruns, worker-thread counts and transports.  Wall
clock readings stay out of the rendered artifact.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.nws import ForecastServer, NWSClient, ServiceCore
from repro.nws.loadtest import (
    LoadtestConfig,
    build_plans,
    render,
    run_loadtest,
)

SMALL = LoadtestConfig(series=16, clients=4, operations=240, seed=3)


def run(config: LoadtestConfig):
    with NWSClient.in_process(ServiceCore(tenants=config.tenants)) as base:
        return run_loadtest(base.for_tenant, config)


class TestConfig:
    def test_defaults_meet_acceptance_floor(self):
        assert LoadtestConfig().series >= 1000

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"series": 0}, "must be >= 1"),
            ({"operations": 0}, "must be >= 1"),
            ({"series": 2, "clients": 3}, "more clients"),
            ({"jobs": 0}, "jobs"),
            ({"tenants": ()}, "tenant"),
            ({"horizon": 0}, "horizon"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            LoadtestConfig(**kwargs)


class TestPlans:
    def test_deterministic(self):
        assert build_plans(SMALL) == build_plans(SMALL)

    def test_op_budget_exact(self):
        plans = build_plans(SMALL)
        # One register per client, then exactly `operations` planned ops.
        assert sum(len(p.ops) for p in plans) == SMALL.operations + SMALL.clients
        assert all(p.ops[0].kind == "register" for p in plans)

    def test_series_ownership_disjoint(self):
        plans = build_plans(SMALL)
        owned = [
            {op.series for op in plan.ops if op.series} for plan in plans
        ]
        for i, a in enumerate(owned):
            for b in owned[i + 1:]:
                assert not (a & b)

    def test_tenants_dealt_round_robin(self):
        config = dataclasses.replace(SMALL, tenants=("a", "b"))
        plans = build_plans(config)
        assert [p.tenant for p in plans] == ["a", "b", "a", "b"]

    def test_chaos_compiles_per_client(self):
        plans = build_plans(dataclasses.replace(SMALL, chaos="dropout10"))
        assert all(p.faults is not None for p in plans)
        with pytest.raises(KeyError, match="unknown fault plan"):
            build_plans(dataclasses.replace(SMALL, chaos="nonsense"))


class TestDeterminism:
    def test_rerun_byte_identical(self):
        first = run(SMALL)
        second = run(SMALL)
        assert first.digest == second.digest
        assert render(first) == render(second)

    def test_jobs_invariant(self):
        serial = run(SMALL)
        threaded = run(dataclasses.replace(SMALL, jobs=4))
        assert serial.digest == threaded.digest
        assert render(serial) == render(threaded)

    def test_seed_changes_digest(self):
        assert run(SMALL).digest != run(dataclasses.replace(SMALL, seed=4)).digest

    def test_chaos_deterministic(self):
        config = dataclasses.replace(SMALL, chaos="dropout10")
        first = run(config)
        second = run(config)
        assert first.fault_counts == second.fault_counts
        assert sum(first.fault_counts.values()) > 0
        assert render(first) == render(second)

    def test_multi_tenant(self):
        config = dataclasses.replace(SMALL, tenants=("a", "b"))
        first = run(config)
        second = run(config)
        assert first.digest == second.digest


class TestRender:
    def test_wall_clock_stays_out(self):
        report = run(SMALL)
        text = render(report)
        assert "wall" not in text
        assert report.digest in text
        assert f"seed={SMALL.seed}" in text

    def test_op_counts_total(self):
        report = run(SMALL)
        assert sum(report.op_counts.values()) == SMALL.operations + SMALL.clients


class TestTransportParity:
    def test_http_digest_matches_in_process(self):
        config = dataclasses.replace(SMALL, operations=120)
        local = run(config)
        with ForecastServer(tenants=config.tenants) as server:
            with NWSClient.connect(server.url) as base:
                remote = run_loadtest(base.for_tenant, config)
        assert remote.digest == local.digest
        assert render(remote) == render(local)
