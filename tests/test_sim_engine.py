"""Tests for repro.sim.engine (the event queue)."""

import pytest

from repro.sim.engine import EventQueue


class TestEventQueue:
    def test_fifo_within_same_deadline(self):
        q = EventQueue()
        order = []
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(1.0, lambda: order.append("b"))
        q.schedule(1.0, lambda: order.append("c"))
        for cb in q.pop_due(1.0):
            cb()
        assert order == ["a", "b", "c"]

    def test_deadline_order(self):
        q = EventQueue()
        order = []
        q.schedule(3.0, lambda: order.append(3))
        q.schedule(1.0, lambda: order.append(1))
        q.schedule(2.0, lambda: order.append(2))
        for cb in q.pop_due(10.0):
            cb()
        assert order == [1, 2, 3]

    def test_pop_due_leaves_future_events(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(5.0, lambda: None)
        assert len(q.pop_due(2.0)) == 1
        assert len(q) == 1
        assert q.next_time() == 5.0

    def test_next_time_empty_is_inf(self):
        assert EventQueue().next_time() == float("inf")

    def test_clear(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.clear()
        assert len(q) == 0

    def test_invalid_times_rejected(self):
        # NaN in particular would silently corrupt the heap invariant (it
        # compares false against everything), so schedule() must refuse it
        # loudly rather than let later events pop out of order.
        q = EventQueue()
        for bad in (-1.0, float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                q.schedule(bad, lambda: None)
            assert len(q) == 0

    def test_n_scheduled_counts_accepted_events_only(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        with pytest.raises(ValueError):
            q.schedule(float("nan"), lambda: None)
        assert q.n_scheduled == 2
        q.pop_due(5.0)
        assert q.n_scheduled == 2  # lifetime tally, not queue depth

    def test_len(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i + 1), lambda: None)
        assert len(q) == 5


class TestHorizonDiscipline:
    """Monotonic pops and no scheduling into the past (the batch engine's
    segmenter depends on both never happening silently)."""

    def test_non_monotonic_pop_rejected(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.pop_due(5.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            q.pop_due(2.0)

    def test_schedule_behind_horizon_rejected(self):
        q = EventQueue()
        q.pop_due(100.0)
        with pytest.raises(ValueError, match="into the past"):
            q.schedule(50.0, lambda: None)
        assert q.n_scheduled == 0

    def test_immediate_events_at_horizon_accepted(self):
        # The kernel pops with now = time + eps and schedules "immediate"
        # events at time itself -- one epsilon behind the horizon must
        # stay legal.
        q = EventQueue()
        q.pop_due(10.0 + 1e-9)
        q.schedule(10.0, lambda: None)
        assert len(q) == 1

    def test_equal_pop_times_accepted(self):
        q = EventQueue()
        q.pop_due(5.0)
        assert q.pop_due(5.0) == []


class TestPeekBatch:
    def test_matches_pop_order_without_removing(self):
        q = EventQueue()
        cb_a, cb_b, cb_c = (lambda: "a"), (lambda: "b"), (lambda: "c")
        q.schedule(2.0, cb_b)
        q.schedule(1.0, cb_a)
        q.schedule(2.0, cb_c)
        q.schedule(9.0, lambda: None)
        peeked = q.peek_batch(2.5)
        assert peeked == [(1.0, cb_a), (2.0, cb_b), (2.0, cb_c)]
        assert len(q) == 4  # non-destructive
        assert [cb for cb in q.pop_due(2.5)] == [cb_a, cb_b, cb_c]

    def test_empty_window(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        assert q.peek_batch(4.0) == []
