"""Tests for repro.core.windows (sliding-window accumulators)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windows import RingMean, RingMedian, RingTrimmedMean

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestRingMean:
    def test_mean_before_full(self):
        ring = RingMean(5)
        ring.push(2.0)
        ring.push(4.0)
        assert ring.mean == pytest.approx(3.0)
        assert len(ring) == 2

    def test_eviction(self):
        ring = RingMean(2)
        for v in (1.0, 2.0, 3.0):
            ring.push(v)
        assert len(ring) == 2
        assert ring.mean == pytest.approx(2.5)
        assert ring.values() == [2.0, 3.0]

    def test_empty_mean_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RingMean(3).mean

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingMean(0)

    @given(st.lists(floats, min_size=1, max_size=60), st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_numpy(self, values, capacity):
        ring = RingMean(capacity)
        for v in values:
            ring.push(v)
        expected = np.mean(values[-capacity:])
        assert ring.mean == pytest.approx(expected, rel=1e-9, abs=1e-6)


class TestRingMedian:
    def test_median_odd_even(self):
        ring = RingMedian(5)
        for v in (5.0, 1.0, 3.0):
            ring.push(v)
        assert ring.median == 3.0
        ring.push(2.0)
        assert ring.median == pytest.approx(2.5)

    def test_eviction_keeps_sorted_in_sync(self):
        ring = RingMedian(3)
        for v in (10.0, 1.0, 5.0, 7.0):
            ring.push(v)  # retains [1, 5, 7]
        assert ring.median == 5.0
        assert ring.values() == [1.0, 5.0, 7.0]

    def test_duplicates(self):
        ring = RingMedian(3)
        for v in (2.0, 2.0, 2.0, 2.0):
            ring.push(v)
        assert ring.median == 2.0

    def test_quantile(self):
        ring = RingMedian(10)
        for v in range(10):
            ring.push(float(v))
        assert ring.quantile(0.0) == 0.0
        assert ring.quantile(1.0) == 9.0
        with pytest.raises(ValueError):
            ring.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RingMedian(3).median

    @given(st.lists(floats, min_size=1, max_size=60), st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_numpy(self, values, capacity):
        ring = RingMedian(capacity)
        for v in values:
            ring.push(v)
        expected = np.median(values[-capacity:])
        assert ring.median == pytest.approx(expected, rel=1e-9, abs=1e-6)


class TestRingTrimmedMean:
    def test_trims_extremes(self):
        ring = RingTrimmedMean(5, 1)
        for v in (100.0, 1.0, 2.0, 3.0, -50.0):
            ring.push(v)
        assert ring.trimmed_mean == pytest.approx(2.0)

    def test_falls_back_to_plain_mean_when_small(self):
        ring = RingTrimmedMean(7, 2)
        ring.push(4.0)
        ring.push(8.0)
        assert ring.trimmed_mean == pytest.approx(6.0)

    def test_bad_trim_rejected(self):
        with pytest.raises(ValueError):
            RingTrimmedMean(4, 2)
        with pytest.raises(ValueError):
            RingTrimmedMean(4, -1)
