"""Parity matrix for the batch sim engine (repro.sim.batch).

The batch engine's contract is *bit-identical* state, not approximate
agreement: after ``run_batch(kernel, t)`` the kernel, every live process
and the attached measurement suite must be byte-for-byte equal to what
``kernel.run_until(t)`` would have produced.  These tests pin that down
across the scheduler x workload x ncpu matrix, through ``simulate_host``
dispatch, and for the fallback paths (counted under "auto", an error
only when the batch engine is forced).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mixture import AdaptiveForecaster, forecast_series
from repro.experiments.testbed import TestbedConfig, simulate_host
from repro.obs.exporters import deterministic_view, render_prometheus
from repro.obs.metrics import MetricsRegistry, installed
from repro.sensors.suite import METHODS, MeasurementSuite
from repro.sim.batch import (
    BATCH_KERNEL_VERSION,
    ParityUnsupported,
    batch_unsupported_reason,
    run_batch,
)
from repro.sim.host import SimHost
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.process import Process
from repro.sim.scheduler import (
    DecayUsageScheduler,
    FairShareScheduler,
    RoundRobinScheduler,
)
from repro.workload.arrivals import PoissonArrivals
from repro.workload.distributions import Pareto
from repro.workload.jobs import BatchJobStream, Daemon, PeriodicJob
from repro.workload.sessions import OnOffSession

SCHEDULERS = {
    "decay_usage": DecayUsageScheduler,
    "round_robin": RoundRobinScheduler,
    "fair_share": FairShareScheduler,
}

WORKLOADS = {
    # Pure idle: only the measurement suite's own probes and tests run.
    "idle": lambda: [],
    # Console users coming and going, plus a background daemon.
    "bursty": lambda: [
        OnOffSession("alice", initial_delay=40.0),
        OnOffSession("bob", nice=4, initial_delay=200.0),
        Daemon("cron", sys_fraction=0.4),
    ],
    # A grid storm: batch arrivals stacked on periodic jobs and a hog.
    "grid_storm": lambda: [
        BatchJobStream(
            "grid",
            arrivals=PoissonArrivals(1.0 / 240.0),
            demand=Pareto(1.4, 45.0),
            max_concurrent=6,
        ),
        PeriodicJob("backup", period=900.0, demand=60.0, offset=120.0),
        Daemon("hog", nice=10),
    ],
}

#: Checkpoints straddle measurement boundaries on purpose: 3599.2 lands
#: mid-round, 3600.0 puts the (float-drifted) measure event inside the
#: trailing ``[t_end - eps, t_end)`` window where the event path fires it
#: after the boundary tick, and 4321.7 is nothing-aligned.
CHECKPOINTS = (3599.2, 3600.0, 4321.7)


def build_pair(sched_key: str, wl_key: str, ncpu: int):
    """Two identically-seeded (host, suite) pairs for one matrix cell."""

    def build():
        host = SimHost(
            f"{sched_key}-{wl_key}-{ncpu}",
            config=KernelConfig(ncpu=ncpu),
            scheduler=SCHEDULERS[sched_key](),
            seed=np.random.SeedSequence([11, ncpu]),
        )
        host.attach(*WORKLOADS[wl_key]())
        suite = MeasurementSuite(host=host.name).attach(host)
        return host, suite

    return build(), build()


def kernel_state(kernel: Kernel):
    """Everything the engines must agree on, floats kept exact via bytes."""
    scalars = np.asarray(
        [
            kernel.time,
            kernel.load_average,
            kernel.cum_user,
            kernel.cum_sys,
            kernel.cum_idle,
            kernel.cum_nrun_time,
        ]
    )
    procs = kernel.processes
    per_proc = np.asarray(
        [
            [p.cpu_time, p.sys_time, p.user_time, p.estcpu, p.last_dispatch]
            for p in procs
        ]
    )
    return {
        "scalars": scalars.tobytes(),
        "counters": (kernel.n_ticks, kernel.n_dispatches, kernel.n_events_fired),
        "procs": [(p.name, p.nice, p.state) for p in procs],
        "proc_floats": per_proc.tobytes(),
    }


def suite_state(suite: MeasurementSuite):
    out = {}
    for method in METHODS:
        times, values = suite.series(method, include_warmup=True)
        out[method] = (
            np.asarray(times).tobytes(),
            np.asarray(values).tobytes(),
        )
    out["observations"] = [
        (o.observed, tuple(sorted(o.premeasurements.items())))
        for o in suite.test_observations
    ]
    return out


@pytest.mark.parametrize("sched_key", sorted(SCHEDULERS))
@pytest.mark.parametrize("wl_key", sorted(WORKLOADS))
@pytest.mark.parametrize("ncpu", [1, 2, 4])
def test_parity_matrix(sched_key, wl_key, ncpu):
    (host_e, suite_e), (host_b, suite_b) = build_pair(sched_key, wl_key, ncpu)
    assert batch_unsupported_reason(host_b.kernel, suite_b) is None
    for t_end in CHECKPOINTS:
        host_e.run_until(t_end)
        run_batch(host_b.kernel, t_end, suite=suite_b)
        label = f"{sched_key}/{wl_key}/ncpu={ncpu} @ t={t_end}"
        assert kernel_state(host_e.kernel) == kernel_state(host_b.kernel), label
        assert suite_state(suite_e) == suite_state(suite_b), label


def test_mixture_winners_identical():
    """Byte-equal series must leave the forecast mixture in the same state."""
    (host_e, suite_e), (host_b, suite_b) = build_pair("decay_usage", "bursty", 1)
    host_e.run_until(7200.0)
    run_batch(host_b.kernel, 7200.0, suite=suite_b)
    for method in METHODS:
        _, values_e = suite_e.series(method)
        _, values_b = suite_b.series(method)
        mix_e, mix_b = AdaptiveForecaster(), AdaptiveForecaster()
        out_e = forecast_series(values_e, mix_e)
        out_b = forecast_series(values_b, mix_b)
        assert out_e.tobytes() == out_b.tobytes(), method
        assert mix_e.bank.best_name() == mix_b.bank.best_name(), method


def test_run_batch_without_suite():
    def build():
        k = Kernel()
        k.spawn(Process("hog"))
        k.spawn(Process("soak", nice=19, sys_fraction=0.3))
        return k

    k_event, k_batch = build(), build()
    k_event.run_until(5000.0)
    run_batch(k_batch, 5000.0)
    assert kernel_state(k_event) == kernel_state(k_batch)


def test_run_batch_refuses_backwards():
    k = Kernel()
    run_batch(k, 100.0)
    with pytest.raises(ValueError, match="backwards"):
        run_batch(k, 50.0)


class TestUnsupportedDetection:
    def test_clean_kernel_supported(self):
        assert batch_unsupported_reason(Kernel()) is None

    def test_kernel_subclass(self):
        class MyKernel(Kernel):
            pass

        assert batch_unsupported_reason(MyKernel()) == "kernel_subclass"

    def test_tick_listeners(self):
        k = Kernel()
        k.on_tick(lambda kernel: None)
        assert batch_unsupported_reason(k) == "tick_listeners"

    def test_custom_scheduler(self):
        class MyScheduler(DecayUsageScheduler):
            pass

        k = Kernel(None, MyScheduler())
        assert batch_unsupported_reason(k) == "custom_scheduler"

    def test_process_subclass(self):
        class MyProcess(Process):
            pass

        k = Kernel()
        k.spawn(MyProcess("weird"))
        assert batch_unsupported_reason(k) == "process_subclass"

    def test_round_listeners(self):
        host = SimHost("h", seed=0)
        suite = MeasurementSuite(host="h").attach(host)
        suite.on_round(lambda *a, **kw: None)
        assert batch_unsupported_reason(host.kernel, suite) == "round_listeners"

    def test_detached_suite(self):
        host_a = SimHost("a", seed=0)
        host_b = SimHost("b", seed=0)
        suite = MeasurementSuite(host="a").attach(host_a)
        assert batch_unsupported_reason(host_b.kernel, suite) == "suite_detached"

    def test_forced_run_batch_raises(self):
        k = Kernel()
        k.on_tick(lambda kernel: None)
        with pytest.raises(ParityUnsupported, match="tick_listeners"):
            run_batch(k, 100.0)


class TestSimulateHostDispatch:
    CONFIG = TestbedConfig(duration=3600.0)

    def run_state(self, run):
        return {
            "series": {
                m: (s.times.tobytes(), s.values.tobytes())
                for m, s in run.series.items()
            },
            "observed": run.observed().tobytes(),
        }

    def test_engines_byte_identical_through_simulate_host(self):
        for host in ("kongo", "thing1"):
            runs = {}
            views = {}
            for engine in ("event", "batch"):
                config = TestbedConfig(duration=3600.0, sim_engine=engine)
                with installed(MetricsRegistry()) as registry:
                    runs[engine] = simulate_host(host, config)
                    views[engine] = render_prometheus(deterministic_view(registry))
            assert self.run_state(runs["event"]) == self.run_state(runs["batch"])
            # Engine choice and wall time are excluded from the
            # deterministic view, so telemetry is identical too.
            assert views["event"] == views["batch"], host

    def test_auto_uses_batch_and_counts_it(self):
        with installed(MetricsRegistry()) as registry:
            simulate_host("kongo", self.CONFIG)
            snapshot = registry.snapshot()
        totals = snapshot["repro_sim_engine_total"]["samples"]
        assert [(s["labels"]["engine"], s["value"]) for s in totals] == [
            ("batch", 1.0)
        ]
        assert "repro_sim_engine_fallback_total" not in snapshot
        assert "repro_sim_engine_seconds" in snapshot

    def test_auto_falls_back_counted_not_error(self, monkeypatch):
        import repro.experiments.testbed as testbed

        monkeypatch.setattr(
            testbed, "batch_unsupported_reason", lambda k, s=None: "tick_listeners"
        )
        with installed(MetricsRegistry()) as registry:
            run = simulate_host("kongo", self.CONFIG)
            snapshot = registry.snapshot()
        assert run.series  # the run completed on the event engine
        totals = snapshot["repro_sim_engine_total"]["samples"]
        assert totals[0]["labels"]["engine"] == "event"
        fallbacks = snapshot["repro_sim_engine_fallback_total"]["samples"]
        assert fallbacks[0]["labels"]["reason"] == "tick_listeners"
        assert fallbacks[0]["value"] == 1.0

    def test_forced_batch_raises_on_unsupported(self, monkeypatch):
        import repro.experiments.testbed as testbed

        monkeypatch.setattr(
            testbed, "batch_unsupported_reason", lambda k, s=None: "tick_listeners"
        )
        config = TestbedConfig(duration=3600.0, sim_engine="batch")
        with pytest.raises(ParityUnsupported, match="tick_listeners"):
            simulate_host("kongo", config)

    def test_forced_event_never_consults_support(self, monkeypatch):
        import repro.experiments.testbed as testbed

        def boom(*a, **kw):  # pragma: no cover - must not be called
            raise AssertionError("support check must be skipped")

        monkeypatch.setattr(testbed, "batch_unsupported_reason", boom)
        config = TestbedConfig(duration=3600.0, sim_engine="event")
        run = simulate_host("kongo", config)
        assert run.series

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown sim engine"):
            TestbedConfig(sim_engine="warp")


def test_batch_kernel_version_is_positive_int():
    assert isinstance(BATCH_KERNEL_VERSION, int) and BATCH_KERNEL_VERSION >= 1
