"""Tests for repro.trace (series container, IO, resampling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.io import (
    load_trace_csv,
    load_trace_jsonl,
    save_trace_csv,
    save_trace_jsonl,
)
from repro.trace.resample import resample_mean, resample_nearest
from repro.trace.series import TraceSeries


def make_series(n=20, period=10.0):
    times = period * np.arange(n)
    values = np.linspace(0.1, 0.9, n)
    return TraceSeries("h", "load_average", times, values)


class TestTraceSeries:
    def test_basic_properties(self):
        s = make_series(7)
        assert len(s) == 7
        assert s.duration == pytest.approx(60.0)
        assert s.period == pytest.approx(10.0)

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            TraceSeries("h", "m", [0.0, 2.0, 1.0], [0.1, 0.2, 0.3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TraceSeries("h", "m", [0.0, 1.0], [0.1])

    def test_window(self):
        s = make_series(10)
        w = s.window(20.0, 50.0)
        assert len(w) == 3
        assert w.times[0] == 20.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            make_series().window(5.0, 5.0)

    def test_aggregate(self):
        s = make_series(10)
        agg = s.aggregate(5)
        assert len(agg) == 2
        assert agg.values[0] == pytest.approx(s.values[:5].mean())
        assert agg.times[0] == s.times[4]  # block-end timestamps
        assert agg.method == "load_average~5"

    def test_aggregate_too_short(self):
        with pytest.raises(ValueError):
            make_series(3).aggregate(5)


class TestIo:
    def test_csv_roundtrip(self, tmp_path):
        s = make_series(15)
        path = tmp_path / "trace.csv"
        save_trace_csv(s, path)
        loaded = load_trace_csv(path)
        assert loaded.host == s.host and loaded.method == s.method
        np.testing.assert_array_equal(loaded.times, s.times)
        np.testing.assert_array_equal(loaded.values, s.values)

    def test_jsonl_roundtrip(self, tmp_path):
        s = make_series(15)
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(s, path)
        loaded = load_trace_jsonl(path)
        assert loaded.host == s.host and loaded.method == s.method
        np.testing.assert_array_equal(loaded.times, s.times)
        np.testing.assert_array_equal(loaded.values, s.values)

    def test_csv_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,value\n1,0.5\n")
        with pytest.raises(ValueError, match="metadata"):
            load_trace_csv(path)

    @given(values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_property_roundtrip_exact(self, values, tmp_path_factory):
        times = 10.0 * np.arange(len(values))
        s = TraceSeries("h", "m", times, np.asarray(values))
        path = tmp_path_factory.mktemp("t") / "trace.csv"
        save_trace_csv(s, path)
        loaded = load_trace_csv(path)
        np.testing.assert_array_equal(loaded.values, s.values)


class TestResample:
    def test_nearest_sample_and_hold(self):
        s = TraceSeries("h", "m", [0.0, 10.0, 25.0], [0.1, 0.5, 0.9])
        r = resample_nearest(s, 5.0)
        np.testing.assert_allclose(r.times, [0, 5, 10, 15, 20, 25])
        np.testing.assert_allclose(r.values, [0.1, 0.1, 0.5, 0.5, 0.5, 0.9])

    def test_mean_bins(self):
        s = TraceSeries("h", "m", [0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 0.0, 1.0])
        r = resample_mean(s, 2.0)
        np.testing.assert_allclose(r.values, [0.5, 0.5])

    def test_mean_fills_empty_bins(self):
        s = TraceSeries("h", "m", [0.0, 30.0], [0.2, 0.8])
        r = resample_mean(s, 10.0)
        # Bins at 10 and 20 are empty: hold 0.2.
        np.testing.assert_allclose(r.values, [0.2, 0.2, 0.2, 0.8])

    def test_regular_input_unchanged_by_nearest(self):
        s = make_series(10)
        r = resample_nearest(s, 10.0)
        np.testing.assert_allclose(r.values, s.values)

    def test_validation(self):
        s = make_series(5)
        with pytest.raises(ValueError):
            resample_nearest(s, 0.0)
        single = TraceSeries("h", "m", [0.0], [0.5])
        with pytest.raises(ValueError):
            resample_nearest(single, 1.0)
