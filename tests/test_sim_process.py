"""Tests for repro.sim.process."""

import math

import pytest

from repro.sim.process import Process, ProcessState


class TestValidation:
    def test_nice_range(self):
        Process("ok", nice=0)
        Process("ok", nice=19)
        with pytest.raises(ValueError):
            Process("bad", nice=-1)
        with pytest.raises(ValueError):
            Process("bad", nice=20)

    def test_cpu_demand_positive(self):
        with pytest.raises(ValueError):
            Process("bad", cpu_demand=0.0)
        with pytest.raises(ValueError):
            Process("bad", cpu_demand=-1.0)

    def test_sys_fraction_range(self):
        with pytest.raises(ValueError):
            Process("bad", sys_fraction=1.5)


class TestAccounting:
    def test_charge_splits_user_sys(self):
        p = Process("p", sys_fraction=0.25)
        p.charge(4.0)
        assert p.cpu_time == pytest.approx(4.0)
        assert p.sys_time == pytest.approx(1.0)
        assert p.user_time == pytest.approx(3.0)

    def test_remaining(self):
        p = Process("p", cpu_demand=10.0)
        p.charge(3.0)
        assert p.remaining == pytest.approx(7.0)

    def test_infinite_demand_never_finishes(self):
        p = Process("daemon")
        p.charge(1e9)
        assert p.remaining == math.inf

    def test_observed_availability(self):
        p = Process("p", cpu_demand=5.0)
        p.start_time = 0.0
        p.charge(5.0)
        p.end_time = 10.0
        assert p.observed_availability == pytest.approx(0.5)

    def test_observed_availability_requires_completion(self):
        p = Process("p")
        with pytest.raises(ValueError):
            p.observed_availability

    def test_initial_state(self):
        p = Process("p")
        assert p.state is ProcessState.RUNNABLE
        assert p.pid == -1
        assert p.runnable and not p.done
