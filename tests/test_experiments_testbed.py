"""Tests for repro.experiments.testbed (runs, memoization, determinism)."""

import numpy as np
import pytest

from repro.experiments.testbed import (
    Testbed,
    TestbedConfig,
    clear_run_cache,
    run_host,
)
from repro.sensors.suite import METHODS

from tests.conftest import SHORT


class TestConfigValidation:
    def test_duration_must_exceed_warmup(self):
        with pytest.raises(ValueError):
            TestbedConfig(duration=100.0, warmup=600.0)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            TestbedConfig(scheduler="fifo")


class TestRunHost:
    def test_memoization_returns_same_object(self):
        a = run_host("thing1", SHORT)
        b = run_host("thing1", SHORT)
        assert a is b

    def test_distinct_configs_not_shared(self):
        a = run_host("thing1", SHORT)
        other = TestbedConfig(duration=SHORT.duration, seed=SHORT.seed + 1)
        b = run_host("thing1", other)
        assert a is not b
        clear_run_cache()

    def test_series_present_for_all_methods(self, thing1_run):
        assert set(thing1_run.series) == set(METHODS)
        for method in METHODS:
            series = thing1_run.series[method]
            assert len(series) > 1000  # 4 h of 10 s samples post-warmup
            assert np.all((series.values >= 0.0) & (series.values <= 1.0))

    def test_observations_populated(self, thing1_run):
        assert len(thing1_run.observations) >= 20
        truth = thing1_run.observed()
        assert np.all((truth >= 0.0) & (truth <= 1.0))

    def test_premeasurement_alignment(self, thing1_run):
        pre = thing1_run.premeasurements("load_average")
        assert pre.shape == thing1_run.observed().shape

    def test_determinism_across_cache_clears(self):
        first = run_host("gremlin", SHORT).values("load_average").copy()
        clear_run_cache()
        second = run_host("gremlin", SHORT).values("load_average")
        np.testing.assert_array_equal(first, second)

    def test_hosts_evolve_independently(self, thing1_run, thing2_run):
        n = min(len(thing1_run.values("load_average")), len(thing2_run.values("load_average")))
        assert not np.array_equal(
            thing1_run.values("load_average")[:n],
            thing2_run.values("load_average")[:n],
        )


class TestTestbed:
    def test_iterates_in_table_order(self):
        testbed = Testbed(SHORT)
        assert testbed.host_names[0] == "thing2"
        assert testbed.host_names[-1] == "kongo"

    def test_runs_all_hosts(self):
        testbed = Testbed(SHORT)
        runs = testbed.runs()
        assert [r.host for r in runs] == testbed.host_names
