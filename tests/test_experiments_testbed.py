"""Tests for repro.experiments.testbed (config, simulation, shims)."""

import numpy as np
import pytest

from repro.experiments.testbed import (
    Testbed,
    TestbedConfig,
    clear_run_cache,
    run_host,
    simulate_host,
)
from repro.runner import default_runner
from repro.sensors.suite import METHODS

from tests.conftest import SHORT


class TestConfigValidation:
    def test_duration_must_exceed_warmup(self):
        with pytest.raises(ValueError):
            TestbedConfig(duration=100.0, warmup=600.0)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            TestbedConfig(scheduler="fifo")

    def test_construction_is_keyword_only(self):
        with pytest.raises(TypeError):
            TestbedConfig(3600.0)

    def test_derive_overrides_and_preserves(self):
        base = TestbedConfig(duration=8 * 3600.0, seed=11)
        medium = base.derive(test_period=3600.0, test_duration=300.0)
        assert medium.test_period == 3600.0
        assert medium.test_duration == 300.0
        assert medium.duration == base.duration
        assert medium.seed == base.seed
        assert base.test_period == 600.0  # base untouched

    def test_derive_revalidates(self):
        base = TestbedConfig(duration=8 * 3600.0)
        with pytest.raises(ValueError):
            base.derive(duration=10.0)


class TestSimulateHost:
    def test_memoization_via_default_runner(self):
        a = default_runner().run_one("thing1", SHORT)
        b = default_runner().run_one("thing1", SHORT)
        assert a is b

    def test_distinct_configs_not_shared(self):
        a = default_runner().run_one("thing1", SHORT)
        other = SHORT.derive(seed=SHORT.seed + 1)
        b = default_runner().run_one("thing1", other)
        assert a is not b
        clear_run_cache()

    def test_series_present_for_all_methods(self, thing1_run):
        assert set(thing1_run.series) == set(METHODS)
        for method in METHODS:
            series = thing1_run.series[method]
            assert len(series) > 1000  # 4 h of 10 s samples post-warmup
            assert np.all((series.values >= 0.0) & (series.values <= 1.0))

    def test_observations_populated(self, thing1_run):
        assert len(thing1_run.observations) >= 20
        truth = thing1_run.observed()
        assert np.all((truth >= 0.0) & (truth <= 1.0))

    def test_premeasurement_alignment(self, thing1_run):
        pre = thing1_run.premeasurements("load_average")
        assert pre.shape == thing1_run.observed().shape

    def test_determinism_across_cache_clears(self):
        first = default_runner().run_one("gremlin", SHORT).values("load_average").copy()
        clear_run_cache()
        second = default_runner().run_one("gremlin", SHORT).values("load_average")
        np.testing.assert_array_equal(first, second)

    def test_pure_simulate_matches_runner(self, thing1_run):
        fresh = simulate_host("thing1", SHORT)
        assert fresh is not thing1_run
        np.testing.assert_array_equal(
            fresh.values("load_average"), thing1_run.values("load_average")
        )

    def test_hosts_evolve_independently(self, thing1_run, thing2_run):
        n = min(len(thing1_run.values("load_average")), len(thing2_run.values("load_average")))
        assert not np.array_equal(
            thing1_run.values("load_average")[:n],
            thing2_run.values("load_average")[:n],
        )


class TestClearRunCache:
    def test_memory_only_returns_zero(self):
        assert clear_run_cache() == 0

    def test_disk_mode_reports_removed_entries(self, tmp_path):
        from repro.runner import Runner

        runner = Runner(cache=tmp_path / "cache")
        runner.run("thing1", SHORT)
        assert clear_run_cache(disk=True, cache_dir=tmp_path / "cache") == 1
        assert clear_run_cache(disk=True, cache_dir=tmp_path / "cache") == 0


class TestDeprecatedShims:
    def test_run_host_warns_and_shares_memo(self):
        with pytest.warns(DeprecationWarning, match="run_host"):
            shimmed = run_host("thing1", SHORT)
        assert shimmed is default_runner().run_one("thing1", SHORT)

    def test_testbed_iterates_in_table_order(self):
        testbed = Testbed(SHORT)
        assert testbed.host_names[0] == "thing2"
        assert testbed.host_names[-1] == "kongo"

    def test_testbed_runs_all_hosts(self):
        testbed = Testbed(SHORT)
        with pytest.warns(DeprecationWarning, match="Testbed.runs"):
            runs = testbed.runs()
        assert [r.host for r in runs] == testbed.host_names

    def test_testbed_run_warns(self):
        with pytest.warns(DeprecationWarning, match="Testbed.run"):
            shimmed = Testbed(SHORT).run("thing2")
        assert shimmed is default_runner().run_one("thing2", SHORT)
