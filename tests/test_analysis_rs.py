"""Tests for repro.analysis.rs (R/S statistic and pox plots)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fgn import fgn
from repro.analysis.rs import PoxPlotData, pox_plot_data, rs_statistic


class TestRsStatistic:
    def test_hand_computed_example(self):
        # x = [1, 2, 3]: mean 2, walk = [-1, -1, 0], range = max(0,-1..0)
        # spread = 0 - (-1) = 1, std = sqrt(2/3).
        expected = 1.0 / np.sqrt(2.0 / 3.0)
        assert rs_statistic([1.0, 2.0, 3.0]) == pytest.approx(expected)

    def test_scale_invariant(self, rng):
        x = rng.normal(size=100)
        assert rs_statistic(x) == pytest.approx(rs_statistic(5.0 * x))

    def test_shift_invariant(self, rng):
        x = rng.normal(size=100)
        assert rs_statistic(x) == pytest.approx(rs_statistic(x + 100.0))

    def test_positive(self, rng):
        for _ in range(20):
            assert rs_statistic(rng.normal(size=50)) > 0.0

    def test_constant_segment_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            rs_statistic(np.full(10, 3.0))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            rs_statistic([1.0])

    @given(st.integers(min_value=8, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_property_positive_and_bounded(self, n):
        gen = np.random.default_rng(n)
        x = gen.normal(size=n)
        value = rs_statistic(x)
        # R/S of n points cannot exceed ~n (walk spread bounded by n*std).
        assert 0.0 < value < 2.0 * n


class TestPoxPlot:
    def test_structure(self):
        x = fgn(4096, 0.7, rng=1)
        pox = pox_plot_data(x)
        assert isinstance(pox, PoxPlotData)
        assert pox.log10_d.shape == pox.log10_rs.shape
        assert pox.segment_lengths.size == pox.mean_log10_rs.size
        assert pox.segment_lengths.size >= 2
        # dyadic lengths starting at the default minimum
        assert pox.segment_lengths[0] == 8
        np.testing.assert_array_equal(
            np.diff(np.log2(pox.segment_lengths)), 1.0
        )

    def test_recovers_hurst_of_fgn(self):
        x = fgn(1 << 15, 0.75, rng=2)
        pox = pox_plot_data(x)
        assert pox.hurst == pytest.approx(0.75, abs=0.08)

    def test_white_noise_near_half(self):
        x = fgn(1 << 15, 0.5, rng=3)
        pox = pox_plot_data(x)
        # R/S has a well-known small-sample positive bias at H=0.5.
        assert 0.45 < pox.hurst < 0.65

    def test_regression_line_passes_through_means(self):
        x = fgn(8192, 0.7, rng=4)
        pox = pox_plot_data(x)
        line = pox.regression_line(np.log10(pox.segment_lengths.astype(float)))
        residual = pox.mean_log10_rs - line
        assert np.abs(residual).max() < 0.25

    def test_max_segments_cap(self):
        x = fgn(1 << 14, 0.7, rng=5)
        pox = pox_plot_data(x, max_segments_per_length=10)
        # At most 10 scatter points per distinct segment length.
        for d in pox.segment_lengths:
            count = np.sum(np.isclose(pox.log10_d, np.log10(d)))
            assert count <= 10

    def test_constant_segments_skipped(self):
        # Half the series constant: those segments contribute nothing.
        x = np.concatenate([np.zeros(512), fgn(512, 0.7, rng=6)])
        pox = pox_plot_data(x)
        assert pox.segment_lengths.size >= 2

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            pox_plot_data(np.arange(16, dtype=float))

    def test_all_constant_rejected(self):
        with pytest.raises(ValueError):
            pox_plot_data(np.ones(1024))
