"""Tests for the nws-repro command-line interface."""

import json
import os
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.seed == 7 and args.hours == 24.0 and args.table is None

    def test_table_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--table", "9"])

    def test_figures_args(self):
        args = build_parser().parse_args(["figures", "--figure", "2", "--out", "/tmp/x"])
        assert args.figure == 2 and args.out == "/tmp/x"

    def test_obs_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.hours == 1.0 and args.seed == 7
        assert args.profiles == "thing1,conundrum"
        assert args.output_format == "dashboard"

    def test_obs_format_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--format", "xml"])


class TestCommands:
    def test_tables_prints_table(self, capsys):
        rc = main(["tables", "--table", "3", "--hours", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TABLE3" in out and "kongo" in out

    def test_tables_with_paper(self, capsys):
        rc = main(
            ["tables", "--table", "1", "--hours", "2", "--seed", "3", "--with-paper"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "paper reported" in out

    def test_figures_with_csv_export(self, capsys, tmp_path):
        rc = main(
            ["figures", "--figure", "1", "--seed", "3", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "FIGURE1" in out
        assert (tmp_path / "figure1_thing1.csv").exists()

    @pytest.mark.skipif(
        not (sys.platform.startswith("linux") and os.path.exists("/proc/stat")),
        reason="live sensing requires Linux /proc",
    )
    def test_live_command(self, capsys):
        rc = main(["live", "--interval", "0.1", "--count", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "loadavg" in out

    @pytest.mark.skipif(
        not (sys.platform.startswith("linux") and os.path.exists("/proc/stat")),
        reason="live sensing requires Linux /proc",
    )
    def test_live_json(self, capsys):
        rc = main(["live", "--interval", "0.1", "--count", "2", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        events = [json.loads(line) for line in out.strip().splitlines()]
        assert events, "expected at least one JSON event"
        for event in events:
            assert event["type"] == "metric"
            assert event["name"] == "repro_live_availability"
            assert set(event) == {
                "type", "kind", "name", "labels", "time", "value",
            }
        methods = {e["labels"]["method"] for e in events}
        assert "load_average" in methods

    def test_obs_prometheus(self, capsys):
        rc = main(
            ["obs", "--hours", "0.1", "--profiles", "thing1",
             "--format", "prometheus"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "# TYPE repro_sim_time_seconds gauge" in out
        assert "repro_sensor_readings_total" in out
        assert "repro_memory_publishes_total" in out

    def test_obs_json_lines(self, capsys):
        rc = main(
            ["obs", "--hours", "0.1", "--profiles", "thing1",
             "--format", "json"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        types = {json.loads(line)["type"] for line in out.strip().splitlines()}
        assert types == {"metric", "span"}

    def test_obs_dashboard(self, capsys):
        rc = main(["obs", "--hours", "0.1", "--profiles", "thing1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OBSERVABILITY DASHBOARD" in out

    def test_sched_demo(self, capsys):
        rc = main(["sched-demo", "--tasks", "6", "--seed", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "workqueue" in out and "nws_predictive" in out

    def test_report_writes_all_artifacts(self, capsys, tmp_path):
        rc = main(
            [
                "report",
                str(tmp_path),
                "--seed",
                "3",
                "--hours",
                "2",
                "--figure3-days",
                "0.5",
            ]
        )
        assert rc == 0
        for n in range(1, 7):
            assert (tmp_path / f"table{n}.csv").exists()
            assert (tmp_path / f"table{n}.txt").exists()
        for n in range(1, 5):
            assert (tmp_path / f"figure{n}.txt").exists()
        assert (tmp_path / "figure3_thing1.csv").exists()
        report = (tmp_path / "REPORT.txt").read_text()
        assert "TABLE1" in report and "figure3" in report
