"""Tests for the nws-repro command-line interface."""

import json
import os
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.seed == 7 and args.hours == 24.0 and args.table is None

    def test_table_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--table", "9"])

    def test_figures_args(self):
        args = build_parser().parse_args(["figures", "--figure", "2", "--out", "/tmp/x"])
        assert args.figure == 2 and args.out == "/tmp/x"

    def test_obs_defaults(self):
        args = build_parser().parse_args(["obs"])
        assert args.hours == 1.0 and args.seed == 7
        assert args.profiles == "thing1,conundrum"
        assert args.output_format == "dashboard"

    def test_obs_format_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "--format", "xml"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.hosts == "all" and args.hours == 24.0
        assert args.jobs == 1 and not args.no_cache
        assert args.cache_dir == "artifacts/cache"

    def test_runner_flags_shared_across_commands(self):
        for command in ("run", "tables", "figures"):
            args = build_parser().parse_args(
                [command, "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache"]
            )
            assert args.jobs == 4 and args.cache_dir == "/tmp/c" and args.no_cache


class TestRunCommand:
    def test_run_prints_host_summary_and_stats(self, capsys, tmp_path):
        rc = main(
            ["run", "--hosts", "thing1", "--hours", "0.5", "--seed", "3",
             "--cache-dir", str(tmp_path / "cache")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "thing1" in out
        assert "misses=1" in out

    def test_run_second_invocation_hits_disk(self, capsys, tmp_path):
        argv = ["run", "--hosts", "thing1,conundrum", "--hours", "0.5",
                "--seed", "3", "--cache-dir", str(tmp_path / "cache")]
        main(argv)
        capsys.readouterr()
        rc = main(argv)
        out = capsys.readouterr().out
        assert rc == 0
        assert "disk_hits=2" in out and "misses=0" in out

    def test_run_rejects_unknown_host(self, capsys):
        rc = main(["run", "--hosts", "nonesuch", "--no-cache"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown hosts" in err

    def test_run_rejects_empty_host_list(self, capsys):
        rc = main(["run", "--hosts", ",", "--no-cache"])
        assert rc == 2


class TestCommands:
    def test_tables_jobs_output_byte_identical(self, capsys):
        argv = ["tables", "--table", "1", "--hours", "2", "--seed", "3", "--no-cache"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_tables_warm_cache_runs_without_misses(self, capsys, tmp_path):
        argv = ["tables", "--table", "2", "--hours", "2", "--seed", "5",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "misses=6" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "misses=0" in warm.err
        assert warm.out == cold.out

    def test_stats_go_to_stderr_not_stdout(self, capsys):
        main(["tables", "--table", "1", "--hours", "2", "--seed", "3", "--no-cache"])
        captured = capsys.readouterr()
        assert "runner:" in captured.err
        assert "runner:" not in captured.out

    def test_tables_prints_table(self, capsys):
        rc = main(["tables", "--table", "3", "--hours", "2", "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TABLE3" in out and "kongo" in out

    def test_tables_with_paper(self, capsys):
        rc = main(
            ["tables", "--table", "1", "--hours", "2", "--seed", "3", "--with-paper"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "paper reported" in out

    def test_figures_with_csv_export(self, capsys, tmp_path):
        rc = main(
            ["figures", "--figure", "1", "--seed", "3", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "FIGURE1" in out
        assert (tmp_path / "figure1_thing1.csv").exists()

    @pytest.mark.skipif(
        not (sys.platform.startswith("linux") and os.path.exists("/proc/stat")),
        reason="live sensing requires Linux /proc",
    )
    def test_live_command(self, capsys):
        rc = main(["live", "--interval", "0.1", "--count", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "loadavg" in out

    @pytest.mark.skipif(
        not (sys.platform.startswith("linux") and os.path.exists("/proc/stat")),
        reason="live sensing requires Linux /proc",
    )
    def test_live_json(self, capsys):
        rc = main(["live", "--interval", "0.1", "--count", "2", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        events = [json.loads(line) for line in out.strip().splitlines()]
        assert events, "expected at least one JSON event"
        for event in events:
            assert event["type"] == "metric"
            assert event["name"] == "repro_live_availability"
            assert set(event) == {
                "type", "kind", "name", "labels", "time", "value",
            }
        methods = {e["labels"]["method"] for e in events}
        assert "load_average" in methods

    def test_obs_prometheus(self, capsys):
        rc = main(
            ["obs", "--hours", "0.1", "--profiles", "thing1",
             "--format", "prometheus"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "# TYPE repro_sim_time_seconds gauge" in out
        assert "repro_sensor_readings_total" in out
        assert "repro_memory_publishes_total" in out

    def test_obs_json_lines(self, capsys):
        rc = main(
            ["obs", "--hours", "0.1", "--profiles", "thing1",
             "--format", "json"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        types = {json.loads(line)["type"] for line in out.strip().splitlines()}
        assert types == {"metric", "span"}

    def test_obs_dashboard(self, capsys):
        rc = main(["obs", "--hours", "0.1", "--profiles", "thing1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OBSERVABILITY DASHBOARD" in out

    def test_sched_demo(self, capsys):
        rc = main(["sched-demo", "--tasks", "6", "--seed", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "workqueue" in out and "nws_predictive" in out

    def test_report_writes_all_artifacts(self, capsys, tmp_path):
        rc = main(
            [
                "report",
                str(tmp_path),
                "--seed",
                "3",
                "--hours",
                "2",
                "--figure3-days",
                "0.5",
            ]
        )
        assert rc == 0
        for n in range(1, 7):
            assert (tmp_path / f"table{n}.csv").exists()
            assert (tmp_path / f"table{n}.txt").exists()
        for n in range(1, 5):
            assert (tmp_path / f"figure{n}.txt").exists()
        assert (tmp_path / "figure3_thing1.csv").exists()
        report = (tmp_path / "REPORT.txt").read_text()
        assert "TABLE1" in report and "figure3" in report


class TestProfileCommand:
    def test_profile_table_default(self, capsys):
        rc = main(["profile", "thing1", "--hours", "0.5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "kernel.run" in out and "sensor.probe" in out
        assert out.splitlines()[0].startswith("phase")

    def test_profile_nws_target(self, capsys):
        rc = main(["profile", "nws", "--hours", "0.25", "--profiles", "thing1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "nws.advance" in out

    def test_profile_folded_byte_stable_across_jobs(self, capsys):
        argv = ["profile", "thing1", "--hours", "0.5", "--format", "folded"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "kernel.run;sensor.probe " in serial

    def test_profile_chrome_is_json(self, capsys):
        rc = main(
            ["profile", "thing1", "--hours", "0.5", "--format", "chrome"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out)
        assert any(e["name"] == "kernel.run" for e in doc["traceEvents"])

    def test_profile_rejects_unknown_target(self, capsys):
        rc = main(["profile", "nonesuch"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "nonesuch" in err


class TestPerfCommand:
    def test_diff_flags_slowdown(self, capsys, tmp_path):
        from repro.perf import record

        base = tmp_path / "base"
        cur = tmp_path / "cur"
        record("bench_a", 1.0, directory=base)
        record("bench_a", 2.0, directory=cur)
        record("bench_b", 1.0, directory=base)
        record("bench_b", 1.01, directory=cur)
        rc = main(["perf", "diff", str(base), "--current", str(cur)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "regression" in out and "1 regression(s)" in out

    def test_diff_clean_exits_zero(self, capsys, tmp_path):
        from repro.perf import record

        base = tmp_path / "base"
        record("bench_a", 1.0, directory=base)
        record("bench_a", 1.0, directory=tmp_path / "cur")
        rc = main(
            ["perf", "diff", str(base), "--current", str(tmp_path / "cur")]
        )
        assert rc == 0

    def test_diff_missing_baseline_is_usage_error(self, capsys, tmp_path):
        rc = main(["perf", "diff", str(tmp_path / "nope")])
        err = capsys.readouterr().err
        assert rc == 2
        assert "no benchmark record directory" in err
