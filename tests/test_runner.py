"""Tests for repro.runner: facade forms, parallelism, layering, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.testbed import HostRun, TestbedConfig
from repro.obs.metrics import MetricsRegistry, installed
from repro.runner import HostSimulationError, Runner, default_runner, parallel_map
from repro.runner import engine
from repro.workload.profiles import profile_names

#: Tiny config for tests that must actually simulate (not hit the shared
#: memo): half an hour past warmup keeps each run well under 100 ms.
TINY = TestbedConfig(duration=1800.0, seed=31)


def same_run(a: HostRun, b: HostRun) -> None:
    assert a.host == b.host
    assert a.config == b.config
    assert set(a.series) == set(b.series)
    for method in a.series:
        np.testing.assert_array_equal(a.series[method].times, b.series[method].times)
        np.testing.assert_array_equal(a.series[method].values, b.series[method].values)
    assert len(a.observations) == len(b.observations)
    np.testing.assert_array_equal(a.observed(), b.observed())
    for method in a.series:
        np.testing.assert_array_equal(
            a.premeasurements(method), b.premeasurements(method)
        )


class TestFacadeForms:
    def test_single_name_returns_hostrun(self):
        run = Runner().run("thing1", TINY)
        assert isinstance(run, HostRun)
        assert run.host == "thing1"

    def test_iterable_preserves_order(self):
        runs = Runner().run(("conundrum", "thing1"), TINY)
        assert [r.host for r in runs] == ["conundrum", "thing1"]

    def test_none_means_full_testbed_in_table_order(self, short_config):
        runs = default_runner().run(None, short_config)
        assert [r.host for r in runs] == profile_names()

    def test_duplicate_hosts_simulated_once(self):
        runner = Runner()
        runs = runner.run(("thing1", "thing1"), TINY)
        assert runs[0] is runs[1]
        assert runner.stats.misses == 1

    def test_run_one(self):
        runner = Runner()
        assert runner.run_one("thing1", TINY).host == "thing1"

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Runner(jobs=0)


class TestParallelIdentity:
    def test_parallel_matches_serial_bitwise(self):
        serial = Runner(jobs=1).run(("thing1", "conundrum"), TINY)
        parallel = Runner(jobs=2).run(("thing1", "conundrum"), TINY)
        for s, p in zip(serial, parallel):
            same_run(s, p)

    def test_parallel_map_preserves_order(self):
        assert parallel_map(abs, [-3, 1, -2], jobs=2) == [3, 1, 2]

    def test_parallel_map_serial_path(self):
        assert parallel_map(abs, [-3], jobs=4) == [3]


class TestLayering:
    def test_memoization_returns_same_object(self):
        runner = Runner()
        a = runner.run("thing1", TINY)
        b = runner.run("thing1", TINY)
        assert a is b
        assert runner.stats.memory_hits == 1
        assert runner.stats.misses == 1

    def test_disk_cache_shared_across_runners(self, tmp_path):
        first = Runner(cache=tmp_path / "cache")
        run = first.run("thing1", TINY)
        second = Runner(cache=tmp_path / "cache")
        again = second.run("thing1", TINY)
        assert second.stats.disk_hits == 1
        assert second.stats.misses == 0
        same_run(run, again)

    def test_clear_memory_forces_disk_hit(self, tmp_path):
        runner = Runner(cache=tmp_path / "cache")
        runner.run("thing1", TINY)
        runner.clear_memory()
        runner.run("thing1", TINY)
        assert runner.stats.disk_hits == 1
        assert runner.stats.misses == 1

    def test_clear_disk_reports_removed(self, tmp_path):
        runner = Runner(cache=tmp_path / "cache")
        runner.run(("thing1", "conundrum"), TINY)
        assert runner.clear_disk() == 2
        assert runner.clear_disk() == 0

    def test_no_cache_runner_clear_disk_is_zero(self):
        assert Runner().clear_disk() == 0

    def test_stats_summary_format(self):
        runner = Runner()
        runner.run("thing1", TINY)
        summary = runner.stats.summary()
        assert "misses=1" in summary
        assert "sim_seconds=" in summary


def _flaky_simulate_one(failures: int):
    """A `_simulate_one` stand-in that fails ``failures`` times, then works."""
    real = engine._simulate_one
    remaining = {"n": failures}

    def job(name, config):
        if remaining["n"] > 0:
            remaining["n"] -= 1
            raise OSError(f"worker for {name} died")
        return real(name, config)

    return job


class _BrokenPool:
    """ProcessPoolExecutor stand-in whose every future is already broken."""

    def __init__(self, max_workers=None):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args, **kwargs):
        future = Future()
        future.set_exception(BrokenProcessPool("a child process terminated"))
        return future


class TestRetries:
    def test_serial_failure_retried_and_counted(self, monkeypatch):
        monkeypatch.setattr(engine, "_simulate_one", _flaky_simulate_one(1))
        with installed(MetricsRegistry()) as registry:
            runner = Runner()
            run = runner.run_one("thing1", TINY)
        assert run.host == "thing1"
        assert runner.stats.retries == 1
        assert "retries=1" in runner.stats.summary()
        snap = registry.snapshot()
        assert snap["repro_runner_retries_total"]["samples"][0]["value"] == 1.0

    def test_retried_result_is_bit_identical(self, monkeypatch):
        clean = Runner().run_one("thing1", TINY)
        monkeypatch.setattr(engine, "_simulate_one", _flaky_simulate_one(2))
        retried = Runner().run_one("thing1", TINY)
        same_run(clean, retried)

    def test_exhausted_retries_name_the_host(self, monkeypatch):
        def always_fail(name, config):
            raise OSError(f"worker for {name} died")

        monkeypatch.setattr(engine, "_simulate_one", always_fail)
        runner = Runner()
        with pytest.raises(HostSimulationError, match="'conundrum'") as info:
            runner.run_one("conundrum", TINY)
        assert info.value.host == "conundrum"
        assert info.value.attempts == engine.MAX_HOST_RETRIES + 1
        assert runner.stats.retries == engine.MAX_HOST_RETRIES

    def test_broken_pool_falls_back_to_in_process(self, monkeypatch):
        clean = Runner(jobs=1).run(("thing1", "conundrum"), TINY)
        monkeypatch.setattr(engine, "ProcessPoolExecutor", _BrokenPool)
        runner = Runner(jobs=2)
        runs = runner.run(("thing1", "conundrum"), TINY)
        # Pool attempts count against the budget: one retry per host.
        assert runner.stats.retries == 2
        for c, r in zip(clean, runs):
            same_run(c, r)


class TestRunnerMetrics:
    def test_counters_track_cache_outcomes(self, tmp_path):
        registry = MetricsRegistry()
        with installed(registry):
            runner = Runner(cache=tmp_path / "cache")
            runner.run("thing1", TINY)
            runner.run("thing1", TINY)
        snap = registry.snapshot()
        misses = snap["repro_runner_cache_misses_total"]["samples"]
        assert misses[0]["value"] == 1.0
        hits = {
            s["labels"]["layer"]: s["value"]
            for s in snap["repro_runner_cache_hits_total"]["samples"]
        }
        assert hits["memory"] == 1.0
        assert snap["repro_runner_jobs"]["samples"][0]["value"] == 1.0
        hist = snap["repro_runner_host_seconds"]["samples"][0]
        assert hist["labels"]["host"] == "thing1"
        assert hist["count"] == 1
