"""Tests for repro.core.predictor (the high-level NWSPredictor facade)."""

import numpy as np
import pytest

from repro.core.predictor import NWSPredictor


class TestObserve:
    def test_counts(self):
        p = NWSPredictor(aggregation=3)
        for v in (0.5, 0.6, 0.7, 0.8):
            p.observe(v)
        assert p.n_measurements == 4
        assert p.n_blocks == 1  # one complete block of 3

    def test_out_of_range_rejected(self):
        p = NWSPredictor()
        with pytest.raises(ValueError):
            p.observe(1.5)
        with pytest.raises(ValueError):
            p.observe(-0.1)

    def test_bad_aggregation_rejected(self):
        with pytest.raises(ValueError):
            NWSPredictor(aggregation=0)


class TestForecasts:
    def test_short_term_tracks_constant(self):
        p = NWSPredictor()
        for _ in range(20):
            p.observe(0.6)
        assert p.forecast_next() == pytest.approx(0.6)

    def test_block_forecast_requires_a_block(self):
        p = NWSPredictor(aggregation=5)
        p.observe(0.5)
        with pytest.raises(ValueError):
            p.forecast_block()

    def test_block_forecast_is_block_mean_based(self):
        p = NWSPredictor(aggregation=2)
        for v in (0.2, 0.4, 0.6, 0.8):
            p.observe(v)  # blocks: 0.3, 0.7
        out = p.forecast_block()
        assert 0.3 - 1e-9 <= out <= 0.7 + 1e-9

    def test_horizon_routing(self):
        p = NWSPredictor(aggregation=3)
        for v in (0.5, 0.5, 0.5, 0.5, 0.5, 0.5):
            p.observe(v)
        assert p.forecast(1) == pytest.approx(0.5)
        assert p.forecast(3) == pytest.approx(0.5)  # medium-term path
        with pytest.raises(ValueError):
            p.forecast(0)

    def test_horizon_falls_back_before_first_block(self):
        p = NWSPredictor(aggregation=50)
        for _ in range(5):
            p.observe(0.4)
        assert p.forecast(100) == pytest.approx(0.4)

    def test_forecasts_clamped(self):
        p = NWSPredictor()
        for _ in range(5):
            p.observe(1.0)
        assert 0.0 <= p.forecast_next() <= 1.0


class TestExpansionFactor:
    def test_inverse_of_availability(self):
        p = NWSPredictor()
        for _ in range(10):
            p.observe(0.5)
        assert p.expansion_factor() == pytest.approx(2.0)

    def test_infinite_when_unavailable(self):
        p = NWSPredictor()
        for _ in range(10):
            p.observe(0.0)
        assert p.expansion_factor() == np.inf
