"""Tests for repro.sensors.suite (the full monitoring configuration)."""

import numpy as np
import pytest

from repro.sensors.suite import METHODS, MeasurementSuite
from repro.sim.host import SimHost
from repro.workload.jobs import Daemon


def make_host(**suite_kwargs):
    host = SimHost("h", seed=1)
    suite = MeasurementSuite(**suite_kwargs).attach(host)
    return host, suite


class TestCadence:
    def test_measurement_count(self):
        host, suite = make_host(warmup=0.0)
        host.run_until(605.0)
        # One reading every 10 s starting at t=10.
        assert suite.n_measurements() == 60

    def test_series_aligned_across_methods(self):
        host, suite = make_host(warmup=0.0)
        host.run_until(300.0)
        times_la, _ = suite.series("load_average")
        times_vm, _ = suite.series("vmstat")
        np.testing.assert_array_equal(times_la, times_vm)

    def test_probes_run_once_per_minute(self):
        host, suite = make_host(warmup=0.0)
        host.run_until(600.0)
        assert len(suite.hybrid.probe.results) == pytest.approx(9, abs=2)

    def test_test_processes_on_schedule(self):
        host, suite = make_host(warmup=0.0, test_period=120.0, test_duration=10.0)
        host.run_until(1000.0)
        assert len(suite.all_test_observations) == pytest.approx(7, abs=1)


class TestWarmup:
    def test_series_drops_warmup(self):
        host, suite = make_host(warmup=300.0)
        host.run_until(600.0)
        times, values = suite.series("load_average")
        assert times.min() >= 300.0
        times_all, _ = suite.series("load_average", include_warmup=True)
        assert times_all.min() < 300.0

    def test_observations_drop_warmup(self):
        host, suite = make_host(warmup=1200.0, test_period=300.0)
        host.run_until(2400.0)
        assert all(o.start_time >= 1200.0 for o in suite.test_observations)
        assert len(suite.all_test_observations) >= len(suite.test_observations)


class TestObservations:
    def test_premeasurements_have_all_methods(self):
        host, suite = make_host(warmup=0.0, test_period=120.0)
        host.run_until(400.0)
        obs = suite.all_test_observations[0]
        assert set(obs.premeasurements) == set(METHODS)
        assert 0.0 <= obs.observed <= 1.0

    def test_idle_host_observations_near_one(self):
        host, suite = make_host(warmup=0.0, test_period=120.0)
        host.run_until(800.0)
        for obs in suite.all_test_observations:
            assert obs.observed > 0.95  # host has no workload attached

    def test_loaded_host_observed_below_one(self):
        host = SimHost("busy", seed=2)
        Daemon("hog").start(host.kernel, np.random.default_rng(0))
        suite = MeasurementSuite(warmup=0.0, test_period=300.0).attach(host)
        host.run_until(1500.0)
        for obs in suite.all_test_observations:
            assert obs.observed < 0.8


class TestConfiguration:
    def test_tests_disabled(self):
        host, suite = make_host(warmup=0.0, test_period=None)
        host.run_until(2000.0)
        assert suite.all_test_observations == []

    def test_unknown_method_rejected(self):
        host, suite = make_host()
        host.run_until(60.0)
        with pytest.raises(KeyError):
            suite.series("nonesuch")

    def test_double_attach_rejected(self):
        host, suite = make_host()
        with pytest.raises(ValueError):
            suite.attach(host)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementSuite(measure_period=0.0)
        with pytest.raises(ValueError):
            MeasurementSuite(probe_period=1.0, measure_period=10.0)
        with pytest.raises(ValueError):
            MeasurementSuite(test_period=5.0, test_duration=10.0)
        with pytest.raises(ValueError):
            MeasurementSuite(warmup=-1.0)
