"""CLI contract for ``nws-repro lint``: exit codes, text and JSON output."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint.reporters import JSON_VERSION

CLEAN_ENGINE = '''\
"""Fixture module: deterministic event push."""

import heapq
import itertools

_counter = itertools.count()


def push(heap, deadline, callback):
    heapq.heappush(heap, (deadline, next(_counter), callback))
'''

DIRTY_ENGINE = '''\
"""Fixture module: seeded DET001 violation."""

import time


def stamp():
    return time.time()
'''


def make_tree(root: Path, engine_source: str) -> Path:
    """A miniature ``repro.sim`` package so scoped rules fire."""
    pkg = root / "repro"
    (pkg / "sim").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "sim" / "__init__.py").write_text("")
    (pkg / "sim" / "engine.py").write_text(engine_source)
    return pkg


def test_clean_tree_exits_zero(tmp_path, capsys):
    pkg = make_tree(tmp_path, CLEAN_ENGINE)
    assert main(["lint", str(pkg)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_violation_exits_one_with_rule_file_line(tmp_path, capsys):
    pkg = make_tree(tmp_path, DIRTY_ENGINE)
    assert main(["lint", str(pkg)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "engine.py" in out
    # time.time() call is on line 7 of the fixture.
    assert "engine.py:7:" in out


def test_json_output_schema(tmp_path, capsys):
    pkg = make_tree(tmp_path, DIRTY_ENGINE)
    assert main(["lint", str(pkg), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_VERSION
    assert payload["ok"] is False
    assert payload["files_checked"] == 3
    assert set(payload["rules_run"]) >= {"DET001", "UNIT001", "PROTO001"}
    (finding,) = payload["findings"]
    assert finding["rule"] == "DET001"
    assert finding["path"].endswith("engine.py")
    assert finding["line"] == 7
    assert isinstance(finding["col"], int)
    assert "time.time" in finding["message"]
    assert payload["suppressed"] == []


def test_json_clean_tree(tmp_path, capsys):
    pkg = make_tree(tmp_path, CLEAN_ENGINE)
    assert main(["lint", str(pkg), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["findings"] == []


def test_suppressed_violation_exits_zero(tmp_path, capsys):
    source = DIRTY_ENGINE.replace(
        "time.time()",
        "time.time()  # lint: ignore[DET001] -- fixture: wall clock wanted",
    )
    pkg = make_tree(tmp_path, source)
    assert main(["lint", str(pkg)]) == 0
    assert "suppressed" in capsys.readouterr().out


def test_select_and_ignore(tmp_path, capsys):
    pkg = make_tree(tmp_path, DIRTY_ENGINE)
    assert main(["lint", str(pkg), "--select", "MUT001"]) == 0
    capsys.readouterr()
    assert main(["lint", str(pkg), "--ignore", "DET001"]) == 0
    capsys.readouterr()
    assert main(["lint", str(pkg), "--select", "DET001,MUT001"]) == 1


def test_unknown_rule_exits_two(tmp_path, capsys):
    pkg = make_tree(tmp_path, CLEAN_ENGINE)
    assert main(["lint", str(pkg), "--select", "NOPE999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_nonexistent_path_exits_two(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "missing")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "UNIT001", "PROTO001", "MUT001", "HEAP001", "EXC001"):
        assert rule_id in out


def test_lint_file_argument(tmp_path, capsys):
    pkg = make_tree(tmp_path, DIRTY_ENGINE)
    assert main(["lint", str(pkg / "sim" / "engine.py")]) == 1
    assert "DET001" in capsys.readouterr().out


def test_real_tree_acceptance(capsys):
    """The shipped tree lints clean through the real CLI entry point."""
    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    if not src.is_dir():  # pragma: no cover - sdist layouts
        pytest.skip("src/repro not present")
    assert main(["lint", str(src)]) == 0
