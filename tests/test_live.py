"""Tests for repro.live (real /proc sensing) -- Linux-only, fast cadences."""

import os
import sys
import threading
import time

import pytest

pytestmark = pytest.mark.skipif(
    not (sys.platform.startswith("linux") and os.path.exists("/proc/stat")),
    reason="live sensing requires Linux /proc",
)

from repro.live.proc import ProcStatReader, read_loadavg, read_proc_stat
from repro.live.probe import LiveMonitor, spin_probe
from repro.live.sensors import LiveLoadAverageSensor, LiveVmstatSensor


class TestProcReaders:
    def test_loadavg_triple(self):
        one, five, fifteen = read_loadavg()
        for value in (one, five, fifteen):
            assert value >= 0.0

    def test_proc_stat_counters_monotone(self):
        a = read_proc_stat()
        time.sleep(0.05)
        b = read_proc_stat()
        assert b.total >= a.total
        assert a.procs_running >= 1

    def test_stat_reader_fractions_sum_to_one(self):
        reader = ProcStatReader()
        time.sleep(0.2)
        user, sys_, idle, n = reader.delta()
        assert user + sys_ + idle == pytest.approx(1.0)
        assert n >= 1

    def test_missing_path_raises_runtime_error(self):
        with pytest.raises(RuntimeError, match="live sensing"):
            read_loadavg("/nonexistent/loadavg")


class TestLiveSensors:
    def test_loadavg_sensor_in_unit_range(self):
        sensor = LiveLoadAverageSensor()
        value = sensor.read()
        assert 0.0 < value <= 1.0

    def test_loadavg_matches_formula(self):
        sensor = LiveLoadAverageSensor()
        one_minute, _, _ = read_loadavg()
        assert sensor.read() == pytest.approx(1.0 / (one_minute + 1.0), abs=0.05)

    def test_ncpu_aware_at_least_plain(self):
        plain = LiveLoadAverageSensor().read()
        aware = LiveLoadAverageSensor(ncpu_aware=True).read()
        assert aware >= plain - 1e-9

    def test_vmstat_sensor_in_unit_range(self):
        sensor = LiveVmstatSensor()
        time.sleep(0.2)
        value = sensor.read()
        assert 0.0 <= value <= 1.0

    def test_vmstat_validation(self):
        with pytest.raises(ValueError):
            LiveVmstatSensor(smoothing=2.0)


class TestSpinProbe:
    def test_measures_share_on_quiet_machine(self):
        share = spin_probe(0.3)
        assert 0.3 < share <= 1.0  # CI containers can be noisy; loose floor

    def test_detects_contention(self):
        # Spin a competing thread pinned to the GIL-free busy loop via a
        # subprocess would be heavyweight; instead just assert the probe
        # returns less than ~1.0 + epsilon and is repeatable.
        first = spin_probe(0.2)
        second = spin_probe(0.2)
        assert abs(first - second) < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            spin_probe(0.0)


class TestLiveMonitor:
    def test_run_collects_all_methods(self):
        monitor = LiveMonitor(measure_period=0.1, probe_period=None)
        traces = monitor.run(4)
        assert set(traces) == {"load_average", "vmstat", "nws_hybrid"}
        for series in traces.values():
            assert len(series) == 4
            assert series.host == os.uname().nodename

    def test_probe_rearbitrates(self):
        monitor = LiveMonitor(
            measure_period=0.1, probe_period=0.2, probe_duration=0.1
        )
        monitor.run(4)
        # At least one probe fired and set a bias (possibly ~0).
        assert monitor._trusted in ("load_average", "vmstat")

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveMonitor(measure_period=0.0)
        with pytest.raises(ValueError):
            LiveMonitor(measure_period=5.0, probe_period=1.0)
        monitor = LiveMonitor(measure_period=0.1, probe_period=None)
        with pytest.raises(ValueError):
            monitor.run(0)
