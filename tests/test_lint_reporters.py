"""Reporter edge cases: SARIF output, odd findings, empty runs."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import Finding, LintResult, lint_paths, rule_ids
from repro.lint.reporters import (
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)


def _result(findings=(), suppressed=(), files=1):
    return LintResult(
        findings=list(findings),
        suppressed=list(suppressed),
        files_checked=files,
        rules_run=rule_ids(),
    )


def test_sarif_is_valid_schema_shaped_json():
    finding = Finding("src/x.py", 7, 4, "DET001", "wall-clock call")
    payload = json.loads(render_sarif(_result([finding])))
    assert payload["version"] == SARIF_VERSION
    (run,) = payload["runs"]
    (result,) = run["results"]
    assert result["ruleId"] == "DET001"
    assert result["message"]["text"] == "wall-clock call"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/x.py"
    # SARIF is 1-based in both axes; findings carry 0-based columns.
    assert location["region"] == {"startLine": 7, "startColumn": 5}


def test_sarif_rule_metadata_covers_registry_and_pseudo_rules():
    payload = json.loads(render_sarif(_result()))
    listed = {rule["id"] for rule in payload["runs"][0]["tool"]["driver"]["rules"]}
    assert listed >= set(rule_ids())
    assert {"LINT000", "LINT001"} <= listed


def test_sarif_finding_without_line_number_omits_region():
    finding = Finding("src/x.py", 0, 0, "LINT000", "cannot lint file")
    payload = json.loads(render_sarif(_result([finding])))
    location = payload["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
    assert "region" not in location


def test_sarif_marks_suppressed_findings_in_source():
    kept = Finding("src/x.py", 3, 0, "DET001", "kept")
    silenced = Finding("src/x.py", 9, 0, "UNIT001", "silenced")
    payload = json.loads(render_sarif(_result([kept], [silenced])))
    results = payload["runs"][0]["results"]
    by_rule = {r["ruleId"]: r for r in results}
    assert "suppressions" not in by_rule["DET001"]
    assert by_rule["UNIT001"]["suppressions"] == [{"kind": "inSource"}]


def test_reporters_render_multiple_rules_on_same_line():
    findings = [
        Finding("src/x.py", 5, 0, "DET001", "first"),
        Finding("src/x.py", 5, 8, "UNIT001", "second"),
    ]
    text = render_text(_result(findings))
    assert "src/x.py:5:0 DET001 first" in text
    assert "src/x.py:5:8 UNIT001 second" in text
    sarif = json.loads(render_sarif(_result(findings)))
    assert len(sarif["runs"][0]["results"]) == 2
    payload = json.loads(render_json(_result(findings)))
    assert len(payload["findings"]) == 2


def test_empty_project_run_renders_cleanly(tmp_path, capsys):
    empty = tmp_path / "nothing_here"
    empty.mkdir()
    result = lint_paths([empty])
    assert result.ok and result.files_checked == 0
    assert "clean: 0 files checked" in render_text(result)
    assert json.loads(render_sarif(result))["runs"][0]["results"] == []
    assert main(["lint", str(empty), "--format", "sarif"]) == 0
    assert json.loads(capsys.readouterr().out)["version"] == SARIF_VERSION


def test_cli_sarif_round_trip_on_violation(tmp_path, capsys):
    pkg = tmp_path / "repro"
    (pkg / "sim").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "sim" / "__init__.py").write_text("")
    (pkg / "sim" / "engine.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    )
    assert main(["lint", str(pkg), "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    (result,) = payload["runs"][0]["results"]
    assert result["ruleId"] == "DET001"
    assert result["locations"][0]["physicalLocation"]["artifactLocation"][
        "uri"
    ].endswith("engine.py")


def test_real_tree_sarif_acceptance(capsys):
    src = Path(__file__).resolve().parents[1] / "src" / "repro"
    if not src.is_dir():  # pragma: no cover - sdist layouts
        import pytest

        pytest.skip("src/repro not present")
    assert main(["lint", str(src), "--format", "sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # The tree's only findings are the two justified suppressions.
    results = payload["runs"][0]["results"]
    assert all(r.get("suppressions") for r in results)
