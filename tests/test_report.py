"""Tests for repro.report (ASCII plots and CSV export)."""

import csv

import numpy as np
import pytest

from repro.experiments.results import FigureResult, TableResult
from repro.report.ascii import histogram, line_plot, scatter_plot
from repro.report.export import export_figure_csv, export_table_csv


class TestLinePlot:
    def test_dimensions(self):
        x = np.linspace(0, 10, 100)
        y = np.sin(x)
        text = line_plot(x, y, width=40, height=8)
        lines = text.split("\n")
        assert len(lines) == 10  # 8 rows + axis + labels
        assert all(len(line) <= 60 for line in lines)

    def test_contains_markers(self):
        text = line_plot([0, 1, 2], [0.0, 1.0, 0.0], width=10, height=4)
        assert "*" in text

    def test_fixed_y_range(self):
        text = line_plot([0, 1], [0.4, 0.6], width=10, height=4, y_range=(0, 1))
        assert "1" in text.split("\n")[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot([], [])
        with pytest.raises(ValueError):
            line_plot([1, 2], [1, 2], width=1)


class TestScatterPlot:
    def test_markers_and_overlay(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 0.5, 1.0])
        text = scatter_plot(x, y, overlay=(x, y * 0.9))
        assert "+" in text and "o" in text

    def test_constant_data_no_crash(self):
        text = scatter_plot([1.0, 1.0], [2.0, 2.0])
        assert "+" in text


class TestHistogram:
    def test_bars_proportional(self):
        values = np.concatenate([np.zeros(90), np.ones(10)])
        text = histogram(values, bins=2, width=30)
        lines = text.split("\n")
        assert lines[0].count("#") == 30
        assert 1 <= lines[1].count("#") <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)


class TestExport:
    def test_table_csv(self, tmp_path):
        table = TableResult(
            table_id="tableX",
            title="t",
            headers=["Host", "A"],
            rows=[["h1", "1.0%"], ["h2", "2.0%"]],
        )
        path = tmp_path / "t.csv"
        export_table_csv(table, path)
        with path.open() as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["Host", "A"]
        assert rows[1] == ["h1", "1.0%"]

    def test_figure_csv(self, tmp_path):
        figure = FigureResult(
            figure_id="figX",
            title="f",
            panels={"p": {"x": np.array([1.0, 2.0]), "y": np.array([3.0, 4.0])}},
        )
        paths = export_figure_csv(figure, tmp_path)
        assert len(paths) == 1
        with paths[0].open() as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["x", "y"]
        assert float(rows[1][0]) == 1.0

    def test_figure_unequal_lengths_padded(self, tmp_path):
        figure = FigureResult(
            figure_id="figY",
            title="f",
            panels={"p": {"x": np.array([1.0]), "y": np.array([1.0, 2.0])}},
        )
        (path,) = export_figure_csv(figure, tmp_path)
        with path.open() as f:
            rows = list(csv.reader(f))
        assert rows[1] == ["1.0", "1.0"]
        assert rows[2] == ["", "2.0"]  # shorter column padded


class TestTableResult:
    def test_cell_lookup(self):
        table = TableResult("t", "title", ["Host", "A"], [["h1", "5%"]])
        assert table.cell("h1", "A") == "5%"
        with pytest.raises(KeyError):
            table.cell("h1", "B")
        with pytest.raises(KeyError):
            table.cell("h9", "A")

    def test_render_with_paper(self):
        table = TableResult(
            "t", "title", ["Host", "A"], [["h1", "5%"]], paper=[["h1", "4%"]]
        )
        text = table.render(with_paper=True)
        assert "paper reported" in text and "4%" in text
