"""End-to-end observability: instrumented sim + NWS runs.

Covers the obs acceptance criteria: the Prometheus export of an
instrumented run covers the sim, sensor, forecaster and memory layers, and
two runs with the same seed produce byte-identical JSON-lines traces.
"""

import pytest

from repro.nws import NWSSystem
from repro.obs import (
    MetricsRegistry,
    Tracer,
    installed,
    observe_kernel,
    render_jsonl,
    render_prometheus,
    traced,
)
from repro.obs.dashboard import render_dashboard
from repro.sim.kernel import Kernel
from repro.sim.process import Process

HOURS = 0.25  # simulated; enough for probes, tests and forecaster scoring


def _instrumented_run(seed: int = 7, hours: float = HOURS):
    registry = MetricsRegistry()
    with installed(registry):
        system = NWSSystem(["thing1"], seed=seed)
        tracer = Tracer(clock=lambda: system.clock)
        with traced(tracer):
            system.advance(hours * 3600.0)
            reports = system.forecaster.query_all()
    return registry, tracer, system, reports


@pytest.fixture(scope="module")
def run():
    return _instrumented_run()


class TestKernelInstrumentation:
    def test_collect_gauges_track_kernel_state(self):
        registry = MetricsRegistry()
        with installed(registry):
            kernel = Kernel()
            observe_kernel(kernel, host="h")
            kernel.spawn(Process("spin", cpu_demand=5.0))
            kernel.run_until(30.0)
        snap = registry.snapshot()

        def value(name):
            return snap[name]["samples"][0]["value"]

        assert value("repro_sim_time_seconds") == 30.0
        assert value("repro_sim_ticks_total") == 30
        assert value("repro_sim_processes_spawned_total") == 1
        assert value("repro_sim_processes_completed_total") == 1
        assert snap["repro_sim_time_seconds"]["samples"][0]["labels"] == {
            "host": "h"
        }

    def test_cpu_seconds_split_by_mode(self):
        registry = MetricsRegistry()
        with installed(registry):
            kernel = Kernel()
            observe_kernel(kernel)
            kernel.spawn(Process("spin", cpu_demand=4.0, sys_fraction=0.25))
            kernel.run_until(10.0)
        samples = registry.snapshot()["repro_sim_cpu_seconds_total"]["samples"]
        by_mode = {s["labels"]["mode"]: s["value"] for s in samples}
        assert by_mode["user"] == pytest.approx(3.0)
        assert by_mode["sys"] == pytest.approx(1.0)
        assert by_mode["idle"] == pytest.approx(6.0)

    def test_uninstrumented_kernel_costs_nothing_extra(self):
        # With the null registry installed (the default), the same run
        # works and no metric state accumulates anywhere.
        kernel = Kernel()
        observe_kernel(kernel)
        kernel.spawn(Process("spin", cpu_demand=1.0))
        kernel.run_until(5.0)
        assert kernel.n_ticks == 5  # always-on tallies still advance


class TestSystemCoverage:
    def test_prometheus_covers_all_layers(self, run):
        registry, _, _, _ = run
        text = render_prometheus(registry)
        for family in (
            "repro_sim_time_seconds",
            "repro_sim_events_fired_total",
            "repro_sensor_readings_total",
            "repro_sensor_probes_total",
            "repro_sensor_probe_availability_bucket",
            "repro_forecaster_updates_total",
            "repro_forecaster_wins",
            "repro_memory_publishes_total",
            "repro_nameserver_registrations_total",
            "repro_nws_publish_rounds_total",
        ):
            assert family in text, family

    def test_sensible_magnitudes(self, run):
        registry, _, system, _ = run
        snap = registry.snapshot()
        rounds = snap["repro_nws_publish_rounds_total"]["samples"][0]["value"]
        # One reading per 10 s measure period.
        assert rounds == pytest.approx(HOURS * 3600.0 / 10.0, abs=2)
        publishes = sum(
            s["value"] for s in snap["repro_memory_publishes_total"]["samples"]
        )
        assert publishes == rounds * 3  # three methods per round
        probes = snap["repro_sensor_probes_total"]["samples"][0]["value"]
        assert probes == pytest.approx(HOURS * 3600.0 / 60.0, abs=2)

    def test_forecaster_telemetry_present_per_member(self, run):
        registry, _, _, reports = run
        snap = registry.snapshot()
        wins = snap["repro_forecaster_wins"]["samples"]
        series_seen = {s["labels"]["series"] for s in wins}
        assert series_seen == set(reports)
        total_wins = sum(s["value"] for s in wins)
        assert total_wins > 0

    def test_spans_recorded_from_sim_clock(self, run):
        _, tracer, _, _ = run
        names = {s.name for s in tracer.spans}
        assert {"nws.advance", "nws.query", "sensor.probe"} <= names
        assert all(s.end >= s.start >= 0.0 for s in tracer.spans)

    def test_dashboard_renders(self, run):
        registry, tracer, system, reports = run
        text = render_dashboard(
            registry, tracer=tracer, memory=system.memory, reports=reports
        )
        assert "OBSERVABILITY DASHBOARD" in text
        assert "Forecaster battery" in text
        assert "Spans" in text


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        first = _instrumented_run(seed=11)
        second = _instrumented_run(seed=11)
        a = render_jsonl(first[0], first[1])
        b = render_jsonl(second[0], second[1])
        assert a == b

    def test_different_seeds_differ(self):
        # thing1's workload needs a while to diverge: the load-average
        # filter smooths out the first few stochastic decisions.
        a = _instrumented_run(seed=11, hours=2.0)
        b = _instrumented_run(seed=12, hours=2.0)
        assert render_jsonl(a[0], a[1]) != render_jsonl(b[0], b[1])
