"""Tests for repro.analysis.fgn (Davies-Harte fractional Gaussian noise)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fgn import fbm, fgn, fgn_autocovariance


class TestAutocovariance:
    def test_lag_zero_is_sigma_squared(self):
        g = fgn_autocovariance(0.7, 10, sigma=2.0)
        assert g[0] == pytest.approx(4.0)

    def test_h_half_is_white(self):
        g = fgn_autocovariance(0.5, 10)
        assert g[0] == pytest.approx(1.0)
        np.testing.assert_allclose(g[1:], 0.0, atol=1e-12)

    def test_positive_correlation_for_h_above_half(self):
        g = fgn_autocovariance(0.8, 20)
        assert np.all(g[1:] > 0.0)

    def test_negative_correlation_for_h_below_half(self):
        g = fgn_autocovariance(0.3, 5)
        assert np.all(g[1:] < 0.0)

    def test_known_value(self):
        # gamma(1) = (2^{2H} - 2) / 2 for unit variance.
        h = 0.75
        expected = (2 ** (2 * h) - 2.0) / 2.0
        assert fgn_autocovariance(h, 1)[1] == pytest.approx(expected)

    def test_bad_hurst_rejected(self):
        for h in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                fgn_autocovariance(h, 5)


class TestFgn:
    def test_reproducible_with_seed(self):
        a = fgn(256, 0.7, rng=42)
        b = fgn(256, 0.7, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(fgn(256, 0.7, rng=1), fgn(256, 0.7, rng=2))

    def test_unit_variance(self):
        x = fgn(1 << 16, 0.75, rng=3)
        assert x.var() == pytest.approx(1.0, rel=0.05)
        # The sample mean of LRD noise has std ~ n^{H-1} = 65536^{-0.25}.
        assert abs(x.mean()) < 4 * (1 << 16) ** (0.75 - 1.0)

    def test_sigma_scales_variance(self):
        x = fgn(1 << 15, 0.6, sigma=3.0, rng=4)
        assert x.var() == pytest.approx(9.0, rel=0.1)

    def test_empirical_autocovariance_matches_theory(self):
        x = fgn(1 << 16, 0.8, rng=5)
        theory = fgn_autocovariance(0.8, 4)
        for k in range(1, 5):
            emp = float(np.mean(x[:-k] * x[k:]))
            assert emp == pytest.approx(theory[k], abs=0.05)

    def test_h_half_is_iid_gaussian(self):
        x = fgn(1 << 14, 0.5, rng=6)
        lag1 = float(np.mean(x[:-1] * x[1:]))
        assert abs(lag1) < 0.03

    def test_tiny_n(self):
        assert fgn(1, 0.7, rng=0).shape == (1,)
        assert fgn(2, 0.7, rng=0).shape == (2,)

    def test_generator_instance_accepted(self):
        gen = np.random.default_rng(9)
        x = fgn(64, 0.7, rng=gen)
        assert x.shape == (64,)

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            fgn(0, 0.7)

    @given(st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=15, deadline=None, derandomize=True)
    def test_property_variance_matches_lrd_expectation(self, hurst):
        # For LRD noise the *sample* variance is biased low because the
        # sample mean absorbs low-frequency power:
        # E[s^2] = sigma^2 * (1 - n^{2H-2}).
        # A single realization's variance has wide spread at high H, so
        # average over independent paths to test the expectation itself.
        n = 1 << 13
        base = int(hurst * 1e6)
        observed = float(
            np.mean([fgn(n, hurst, rng=base + i).var() for i in range(8)])
        )
        expected = 1.0 - n ** (2.0 * hurst - 2.0)
        assert observed == pytest.approx(expected, rel=0.25)


class TestFbm:
    def test_is_cumsum_of_fgn(self):
        path = fbm(128, 0.7, rng=11)
        noise = fgn(128, 0.7, rng=11)
        np.testing.assert_allclose(path, np.cumsum(noise))

    def test_self_similar_scaling(self):
        # Var(B_n) ~ n^{2H}: check the growth exponent over many paths.
        h = 0.75
        n = 1024
        finals_full = []
        finals_half = []
        for seed in range(200):
            path = fbm(n, h, rng=seed)
            finals_full.append(path[-1])
            finals_half.append(path[n // 2 - 1])
        ratio = np.var(finals_full) / np.var(finals_half)
        assert ratio == pytest.approx(2 ** (2 * h), rel=0.25)
