"""The deterministic profiler: span trees and byte-stable renderings."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_span_trees,
    installed,
    profile_spans,
    render_chrome,
    render_folded,
    render_table,
)


def _span(name, start, end, **attrs):
    return {"name": name, "start": start, "end": end, "attrs": attrs}


#: A small fixed forest: two roots, one with nested children.
SPANS = [
    _span("kernel.run", 0.0, 100.0, host="thing1"),
    _span("sensor.probe", 10.0, 12.0, host="thing1"),
    _span("sensor.probe", 50.0, 53.0, host="thing1"),
    _span("nws.query", 51.0, 52.0),
    _span("kernel.run", 200.0, 250.0, host="conundrum"),
]


class TestTreeBuilding:
    def test_containment_nesting(self):
        roots = build_span_trees(SPANS)
        assert [r.record.name for r in roots] == ["kernel.run", "kernel.run"]
        first = roots[0]
        assert [c.record.name for c in first.children] == [
            "sensor.probe",
            "sensor.probe",
        ]
        # nws.query nests inside the second probe, not the kernel root.
        assert first.children[1].children[0].record.name == "nws.query"
        assert roots[1].children == []

    def test_identical_intervals_nest_deterministically(self):
        spans = [_span("b", 0.0, 1.0), _span("a", 0.0, 1.0)]
        roots = build_span_trees(spans)
        # Ties sort by name: 'a' becomes the enclosing span.
        assert len(roots) == 1
        assert roots[0].record.name == "a"
        assert roots[0].children[0].record.name == "b"

    def test_overlapping_spans_become_siblings(self):
        spans = [_span("a", 0.0, 10.0), _span("b", 5.0, 15.0)]
        roots = build_span_trees(spans)
        assert [r.record.name for r in roots] == ["a", "b"]

    def test_self_time(self):
        roots = build_span_trees(SPANS)
        assert roots[0].self_time == pytest.approx(100.0 - 2.0 - 3.0)


class TestProfileStats:
    def test_inclusive_and_exclusive(self):
        profile = profile_spans(SPANS)
        by_name = {p.name: p for p in profile.phases}
        kernel = by_name["kernel.run"]
        assert kernel.count == 2
        assert kernel.inclusive == pytest.approx(150.0)
        assert kernel.exclusive == pytest.approx(145.0)
        assert (kernel.min_duration, kernel.max_duration) == (50.0, 100.0)
        probe = by_name["sensor.probe"]
        assert probe.inclusive == pytest.approx(5.0)
        assert probe.exclusive == pytest.approx(4.0)  # minus nws.query
        assert profile.total == pytest.approx(150.0)
        assert profile.span_count == 5

    def test_phases_sorted_hottest_exclusive_first(self):
        profile = profile_spans(SPANS)
        exclusives = [p.exclusive for p in profile.phases]
        assert exclusives == sorted(exclusives, reverse=True)

    def test_span_counter_recorded(self):
        with installed(MetricsRegistry()) as registry:
            profile_spans(SPANS)
        snap = registry.snapshot()
        assert snap["repro_profile_spans_total"]["samples"][0]["value"] == 5.0

    def test_accepts_tracer_spans(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.record("kernel.run", start=0.0, end=10.0, host="x")
        tracer.record("sensor.probe", start=2.0, end=3.0, host="x")
        profile = profile_spans(tracer.spans)
        assert profile.span_count == 2
        assert profile.roots[0].children[0].record.name == "sensor.probe"


class TestRenderings:
    def test_table_shape(self):
        out = render_table(profile_spans(SPANS))
        lines = out.splitlines()
        assert lines[0].split() == [
            "phase", "count", "inclusive", "exclusive", "excl", "%", "min", "max",
        ]
        assert lines[-1] == "total 150.000000 over 5 spans"

    def test_folded_format(self):
        out = render_folded(SPANS)
        entries = dict(
            line.rsplit(" ", 1) for line in out.splitlines()
        )
        assert entries["kernel.run"] == str(int(145.0 * 1e6))
        assert entries["kernel.run;sensor.probe"] == str(int(4.0 * 1e6))
        assert entries["kernel.run;sensor.probe;nws.query"] == str(int(1.0 * 1e6))

    def test_chrome_trace_is_valid_and_sorted(self):
        doc = json.loads(render_chrome(SPANS))
        events = doc["traceEvents"]
        assert [e["ph"] for e in events] == ["X"] * 5
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        kernel = events[0]
        assert kernel == {
            "name": "kernel.run",
            "cat": "span",
            "ph": "X",
            "ts": 0,
            "dur": int(100.0 * 1e6),
            "pid": 1,
            "tid": 1,
            "args": {"status": "ok", "host": "thing1"},
        }

    @pytest.mark.parametrize("render", [render_folded, render_chrome])
    def test_byte_stable(self, render):
        assert render(list(SPANS)) == render(list(reversed(SPANS)))

    def test_empty_stream(self):
        profile = profile_spans([])
        assert profile.span_count == 0
        assert render_folded(profile) == ""
        assert json.loads(render_chrome(profile))["traceEvents"] == []
        assert "over 0 spans" in render_table(profile)
