"""Scenario tests: the scheduling phenomena the paper's anomalies need.

These are the calibration contracts of the simulator -- if any of them
breaks, Tables 1/2/6 lose the conundrum and kongo signatures.
"""

import pytest

from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.workload.sessions import attach_io_pattern

import numpy as np


def run_probe(kernel, duration=1.5):
    p = kernel.spawn(Process("probe"))
    kernel.after(duration, lambda: kernel.kill(p))
    kernel.run_until(kernel.time + duration + 0.5)
    return p.cpu_time / duration


def run_test_process(kernel, duration=10.0):
    t = kernel.spawn(Process("test"))
    kernel.after(duration, lambda: kernel.kill(t))
    kernel.run_until(kernel.time + duration + 0.5)
    return t.cpu_time / duration


class TestConundrumBehaviour:
    """A nice-19 soaker must be invisible to full-priority work."""

    def test_full_priority_preempts_soaker(self):
        k = Kernel()
        k.spawn(Process("soak", nice=19))
        k.run_until(300.0)
        share = run_test_process(k)
        assert share > 0.95

    def test_soaker_inflates_load_average(self):
        k = Kernel()
        k.spawn(Process("soak", nice=19))
        k.run_until(300.0)
        assert k.load_average > 0.9

    def test_soaker_gets_cpu_when_alone(self):
        k = Kernel()
        soak = k.spawn(Process("soak", nice=19))
        k.run_until(100.0)
        assert soak.cpu_time == pytest.approx(100.0, rel=0.02)


class TestKongoBehaviour:
    """A long-running spinner concedes a window the probe fits inside."""

    def test_probe_overshoots_aged_hog(self):
        k = Kernel()
        k.spawn(Process("hog"))
        k.run_until(1800.0)
        probe_share = run_probe(k)
        assert probe_share > 0.75

    def test_ten_second_test_fair_shares(self):
        k = Kernel()
        k.spawn(Process("hog"))
        k.run_until(1800.0)
        test_share = run_test_process(k)
        assert 0.45 < test_share < 0.70

    def test_probe_sees_more_than_test(self):
        k = Kernel()
        k.spawn(Process("hog"))
        k.run_until(1800.0)
        probe_share = run_probe(k)
        k.run_until(k.time + 60.0)
        test_share = run_test_process(k)
        assert probe_share - test_share > 0.15


class TestSleepBoostBehaviour:
    """I/O-doing jobs keep competitive priority (no kongo effect)."""

    def test_io_job_limits_probe_overshoot(self):
        k = Kernel()
        rng = np.random.default_rng(1)
        job = k.spawn(Process("job"))
        attach_io_pattern(k, job, interval=1.5, wait=0.25, rng=rng)
        k.run_until(300.0)
        probe_share = run_probe(k)
        k.run_until(k.time + 30.0)
        test_share = run_test_process(k)
        # Against an I/O-doing job the probe/test gap shrinks well below
        # the pure-spinner gap.
        assert probe_share - test_share < 0.35

    def test_io_job_estcpu_below_cap(self):
        k = Kernel()
        rng = np.random.default_rng(2)
        job = k.spawn(Process("job"))
        attach_io_pattern(k, job, interval=1.5, wait=0.25, rng=rng)
        k.run_until(120.0)
        assert job.estcpu < k.scheduler.estcpu_cap


class TestFreshProcessTransient:
    def test_fresh_process_brief_advantage(self):
        # Immediately after spawn, a fresh process outruns a capped one,
        # but within a few seconds they alternate.
        k = Kernel()
        old = k.spawn(Process("old"))
        k.run_until(100.0)
        fresh = k.spawn(Process("fresh"))
        k.run_until(101.0)
        assert fresh.cpu_time > 0.8  # almost the whole first second
        k.run_until(120.0)
        # Long-run shares converge toward 50/50.
        recent_fresh = fresh.cpu_time
        assert 0.45 * 20 < recent_fresh < 0.75 * 20
