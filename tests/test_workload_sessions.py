"""Tests for repro.workload.sessions and jobs."""

import numpy as np
import pytest

from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.workload.distributions import Exponential, Fixed
from repro.workload.jobs import BatchJobStream, Daemon, PeriodicJob
from repro.workload.sessions import InteractiveSession, OnOffSession, attach_io_pattern
from repro.workload.arrivals import PoissonArrivals


class TestOnOffSession:
    def test_alternates_on_off(self):
        k = Kernel()
        session = OnOffSession(
            "u",
            on_time=Fixed(5.0),
            off_time=Fixed(10.0),
            initial_delay=0.0,
            io_interval=None,
        )
        session.start(k, np.random.default_rng(0))
        k.run_until(100.0)
        # Cycle = 5 s ON (alone, full speed) + 10 s OFF = 15 s.
        assert session.bursts_started == pytest.approx(100 / 15.0, abs=1.5)
        # Machine busy exactly during ON periods.
        assert k.cum_user + k.cum_sys == pytest.approx(session.bursts_started * 5.0, rel=0.25)

    def test_processes_named_by_user(self):
        k = Kernel()
        session = OnOffSession("alice", on_time=Fixed(100.0), initial_delay=0.0)
        session.start(k, np.random.default_rng(1))
        k.run_until(1.0)
        assert any(p.name == "alice:on" for p in k.processes)

    def test_nice_passed_through(self):
        k = Kernel()
        session = OnOffSession("u", nice=19, on_time=Fixed(100.0), initial_delay=0.0)
        session.start(k, np.random.default_rng(2))
        k.run_until(1.0)
        assert k.processes[0].nice == 19


class TestInteractiveSession:
    def test_bursts_happen_within_sessions(self):
        k = Kernel()
        session = InteractiveSession(
            "u",
            session_time=Fixed(50.0),
            logout_time=Fixed(50.0),
            burst=Fixed(1.0),
            think=Exponential(2.0),
        )
        session.start(k, np.random.default_rng(3))
        k.run_until(500.0)
        assert session.sessions_started >= 3
        assert session.bursts_started > session.sessions_started

    def test_idle_while_logged_out(self):
        k = Kernel()
        session = InteractiveSession(
            "u",
            session_time=Fixed(10.0),
            logout_time=Fixed(1000.0),
            burst=Fixed(0.5),
            think=Exponential(1.0),
        )
        session.start(k, np.random.default_rng(4))
        k.run_until(900.0)  # still inside the first logout period
        assert k.cum_user + k.cum_sys == 0.0


class TestIoPattern:
    def test_process_sleeps_periodically(self):
        k = Kernel()
        p = k.spawn(Process("job"))
        attach_io_pattern(k, p, interval=1.0, wait=0.5)
        k.run_until(30.0)
        # With 1 s run / 0.5 s wait the job accrues ~2/3 of wall time.
        assert p.cpu_time == pytest.approx(20.0, rel=0.15)

    def test_stops_after_completion(self):
        k = Kernel()
        p = k.spawn(Process("job", cpu_demand=2.0))
        attach_io_pattern(k, p, interval=1.0, wait=0.2)
        k.run_until(60.0)  # must not raise after the job exits
        assert p.done

    def test_validation(self):
        k = Kernel()
        p = k.spawn(Process("job"))
        with pytest.raises(ValueError):
            attach_io_pattern(k, p, interval=0.0, wait=0.1)


class TestDaemon:
    def test_spawns_at_start_time(self):
        k = Kernel()
        d = Daemon("late", start_at=10.0)
        d.start(k, np.random.default_rng(5))
        k.run_until(5.0)
        assert d.process is None
        k.run_until(15.0)
        assert d.process is not None
        assert d.process.cpu_time == pytest.approx(5.0, rel=0.1)


class TestBatchJobStream:
    def test_jobs_arrive_and_run(self):
        k = Kernel()
        stream = BatchJobStream(
            "b",
            arrivals=PoissonArrivals(1.0 / 20.0),
            demand=Fixed(2.0),
            io_interval=None,
        )
        stream.start(k, np.random.default_rng(6))
        k.run_until(1000.0)
        assert stream.jobs_started == pytest.approx(50, abs=20)
        assert k.cum_user + k.cum_sys == pytest.approx(stream.jobs_started * 2.0, rel=0.05)

    def test_admission_cap(self):
        k = Kernel()
        stream = BatchJobStream(
            "b",
            arrivals=PoissonArrivals(1.0),  # one per second
            demand=Fixed(1000.0),  # never finishes within the run
            max_concurrent=3,
            io_interval=None,
        )
        stream.start(k, np.random.default_rng(7))
        k.run_until(60.0)
        assert sum(1 for p in k.processes if p.name == "b:job") == 3
        assert stream.jobs_dropped > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchJobStream("b", max_concurrent=0)


class TestPeriodicJob:
    def test_fires_every_period(self):
        k = Kernel()
        job = PeriodicJob("cron", period=100.0, demand=1.0, offset=0.0)
        job.start(k, np.random.default_rng(8))
        k.run_until(950.0)
        assert job.runs == 10  # t = 0, 100, ..., 900

    def test_skips_if_previous_still_running(self):
        k = Kernel()
        # Demand exceeds the period on an otherwise idle machine? No --
        # make contention: a hog halves the cron job's speed.
        k.spawn(Process("hog"))
        job = PeriodicJob("cron", period=10.0, demand=9.0, offset=0.0)
        job.start(k, np.random.default_rng(9))
        k.run_until(100.0)
        # Each run needs ~18 s of wall; roughly every other firing skips.
        assert job.runs <= 7

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicJob("x", period=0.0, demand=1.0)
        with pytest.raises(ValueError):
            PeriodicJob("x", period=10.0, demand=-1.0)
        with pytest.raises(ValueError):
            PeriodicJob("x", period=10.0, demand=1.0, offset=-1.0)
