"""Snapshot merge semantics: the cross-process aggregation primitive."""

import math

import pytest

from repro.obs import MergeError, MetricsRegistry, NullRegistry, render_prometheus


def _worker(fill) -> dict:
    registry = MetricsRegistry()
    fill(registry)
    return registry.snapshot()


class TestCounterMerge:
    def test_counters_add(self):
        parent = MetricsRegistry()
        parent.counter("repro_sim_ticks_total", host="a").inc(3)
        snap = _worker(lambda r: r.counter("repro_sim_ticks_total", host="a").inc(4))
        parent.merge(snap)
        sample = parent.snapshot()["repro_sim_ticks_total"]["samples"][0]
        assert sample["value"] == 7.0

    def test_disjoint_labels_stay_disjoint(self):
        parent = MetricsRegistry()
        parent.counter("repro_sim_ticks_total", host="a").inc(1)
        snap = _worker(lambda r: r.counter("repro_sim_ticks_total", host="b").inc(2))
        parent.merge(snap)
        samples = parent.snapshot()["repro_sim_ticks_total"]["samples"]
        by_host = {s["labels"]["host"]: s["value"] for s in samples}
        assert by_host == {"a": 1.0, "b": 2.0}

    def test_merge_order_invariance(self):
        snaps = [
            _worker(lambda r, i=i: r.counter("repro_sim_ticks_total").inc(i + 1))
            for i in range(4)
        ]
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for s in snaps:
            forward.merge(s)
        for s in reversed(snaps):
            backward.merge(s)
        assert render_prometheus(forward) == render_prometheus(backward)

    def test_negative_counter_rejected(self):
        parent = MetricsRegistry()
        snap = {
            "repro_sim_ticks_total": {
                "type": "counter",
                "samples": [{"labels": {}, "value": -1.0}],
            }
        }
        with pytest.raises(MergeError, match="negative"):
            parent.merge(snap)


class TestGaugeMerge:
    def test_last_writer_by_sim_time(self):
        parent = MetricsRegistry()
        old = _worker(lambda r: r.gauge("repro_sim_load_average").set(0.25))
        new = _worker(lambda r: r.gauge("repro_sim_load_average").set(0.75))
        parent.merge(new, sim_time=100.0)
        parent.merge(old, sim_time=50.0)  # stale: must not win
        sample = parent.snapshot()["repro_sim_load_average"]["samples"][0]
        assert sample["value"] == 0.75

    def test_equal_stamp_tie_break_is_commutative(self):
        a = _worker(lambda r: r.gauge("repro_sim_load_average").set(0.3))
        b = _worker(lambda r: r.gauge("repro_sim_load_average").set(0.9))
        ab = MetricsRegistry()
        ba = MetricsRegistry()
        ab.merge(a, sim_time=10.0)
        ab.merge(b, sim_time=10.0)
        ba.merge(b, sim_time=10.0)
        ba.merge(a, sim_time=10.0)
        assert render_prometheus(ab) == render_prometheus(ba)
        assert ab.snapshot()["repro_sim_load_average"]["samples"][0]["value"] == 0.9

    def test_nan_and_inf_gauges_round_trip(self):
        # NaN/Inf are representable gauge values (a sensor can report
        # them); the merge must carry them through, not crash.
        parent = MetricsRegistry()
        snap = _worker(lambda r: r.gauge("repro_sim_load_average", host="a").set(math.inf))
        parent.merge(snap, sim_time=1.0)
        nan_snap = _worker(
            lambda r: r.gauge("repro_sim_load_average", host="b").set(math.nan)
        )
        parent.merge(nan_snap, sim_time=1.0)
        samples = parent.snapshot()["repro_sim_load_average"]["samples"]
        by_host = {s["labels"]["host"]: s["value"] for s in samples}
        assert math.isinf(by_host["a"])
        assert math.isnan(by_host["b"])


class TestHistogramMerge:
    BUCKETS = (0.5, 1.0, 2.0)

    def _observe(self, registry, *values):
        h = registry.histogram("repro_sensor_probe_availability", buckets=self.BUCKETS)
        for v in values:
            h.observe(v)

    def test_bucketwise_add(self):
        parent = MetricsRegistry()
        self._observe(parent, 0.4, 1.5)
        snap = _worker(lambda r: self._observe(r, 0.4, 0.9, 3.0))
        parent.merge(snap)
        sample = parent.snapshot()["repro_sensor_probe_availability"]["samples"][0]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(0.4 + 1.5 + 0.4 + 0.9 + 3.0)
        # Cumulative buckets: <=0.5 has the two 0.4s, +Inf has everything.
        assert sample["buckets"][0] == [0.5, 2]
        assert sample["buckets"][-1][1] == 5

    def test_merge_order_invariance(self):
        # Dyadic values add exactly in binary, so even the float sum is
        # order-independent; bucket counts are integers and always are.
        snaps = [
            _worker(lambda r, v=v: self._observe(r, v)) for v in (0.25, 0.75, 1.5, 5.0)
        ]
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for s in snaps:
            forward.merge(s)
        for s in reversed(snaps):
            backward.merge(s)
        assert render_prometheus(forward) == render_prometheus(backward)

    def test_bucket_mismatch_is_typed_and_atomic(self):
        parent = MetricsRegistry()
        self._observe(parent, 0.4)
        other = MetricsRegistry()
        other.histogram(
            "repro_sensor_probe_availability", buckets=(0.25, 0.75)
        ).observe(0.4)
        bad = other.snapshot()
        # Add a counter so a non-atomic merge would leave partial state.
        bad["repro_sim_ticks_total"] = {
            "type": "counter",
            "samples": [{"labels": {}, "value": 1.0}],
        }
        before = parent.snapshot()
        with pytest.raises(MergeError, match="bucket bounds"):
            parent.merge(bad)
        assert parent.snapshot() == before  # untouched: validate-then-apply
        assert isinstance(MergeError("x"), ValueError)


class TestMalformedSnapshots:
    def test_empty_snapshot_is_a_noop(self):
        parent = MetricsRegistry()
        parent.counter("repro_sim_ticks_total").inc()
        before = parent.snapshot()
        parent.merge({})
        assert parent.snapshot() == before

    def test_kind_conflict_rejected(self):
        parent = MetricsRegistry()
        parent.counter("repro_sim_ticks_total").inc()
        snap = {
            "repro_sim_ticks_total": {
                "type": "gauge",
                "samples": [{"labels": {}, "value": 1.0}],
            }
        }
        with pytest.raises(MergeError, match="counter here but a gauge"):
            parent.merge(snap)

    @pytest.mark.parametrize(
        "snapshot",
        [
            "not a dict",
            {"bad name!": {"type": "counter", "samples": []}},
            {"repro_x_y": {"samples": []}},
            {"repro_x_y": {"type": "ring", "samples": []}},
            {"repro_x_y": {"type": "counter", "samples": "nope"}},
            {"repro_x_y": {"type": "counter", "samples": [{"value": 1.0}]}},
            {"repro_x_y": {"type": "gauge", "samples": [{"labels": {}}]}},
            {
                "repro_x_y": {
                    "type": "counter",
                    "samples": [{"labels": {"bad key!": "v"}, "value": 1.0}],
                }
            },
        ],
        ids=[
            "non-dict",
            "bad-metric-name",
            "missing-type",
            "unknown-kind",
            "non-list-samples",
            "missing-labels",
            "missing-value",
            "bad-label-name",
        ],
    )
    def test_structurally_invalid_snapshots(self, snapshot):
        with pytest.raises(MergeError):
            MetricsRegistry().merge(snapshot)

    @pytest.mark.parametrize(
        "buckets",
        [
            [[1.0, 2]],  # single entry: no +Inf terminator possible
            [[1.0, 2], [2.0, 1]],  # last bound not +Inf
            [[2.0, 1], [1.0, 1], [float("inf"), 2]],  # unsorted bounds
            [[1.0, 3], [float("inf"), 2]],  # decreasing cumulative
            [["x", 1], [float("inf"), 2]],  # non-numeric bound
        ],
        ids=["too-short", "no-inf", "unsorted", "decreasing", "non-numeric"],
    )
    def test_malformed_histogram_buckets(self, buckets):
        snap = {
            "repro_x_y": {
                "type": "histogram",
                "samples": [
                    {"labels": {}, "sum": 1.0, "count": 2, "buckets": buckets}
                ],
            }
        }
        with pytest.raises(MergeError):
            MetricsRegistry().merge(snap)


class TestNullRegistryMerge:
    def test_null_merge_is_a_noop(self):
        null = NullRegistry()
        null.merge({"anything": "goes"})  # never validates, never stores
        assert null.snapshot() == {}
