"""Tests for repro.analysis.hurst (three Hurst estimators)."""

import numpy as np
import pytest

from repro.analysis.fgn import fgn
from repro.analysis.hurst import (
    HurstEstimate,
    hurst_aggregated_variance,
    hurst_periodogram,
    hurst_rs,
)

ESTIMATORS = [hurst_rs, hurst_aggregated_variance, hurst_periodogram]


class TestEstimatorsOnFgn:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    @pytest.mark.parametrize("true_h", [0.6, 0.75, 0.9])
    def test_recovers_known_hurst(self, estimator, true_h):
        x = fgn(1 << 15, true_h, rng=int(true_h * 100))
        est = estimator(x)
        assert est.value == pytest.approx(true_h, abs=0.1)

    @pytest.mark.parametrize("estimator", [hurst_aggregated_variance, hurst_periodogram])
    def test_white_noise_near_half(self, estimator):
        x = fgn(1 << 15, 0.5, rng=9)
        assert estimator(x).value == pytest.approx(0.5, abs=0.1)

    def test_estimators_agree_with_each_other(self):
        x = fgn(1 << 15, 0.8, rng=10)
        values = [estimator(x).value for estimator in ESTIMATORS]
        assert max(values) - min(values) < 0.15


class TestHurstEstimate:
    def test_metadata(self):
        x = fgn(4096, 0.7, rng=11)
        est = hurst_rs(x)
        assert isinstance(est, HurstEstimate)
        assert est.method == "rs"
        assert est.n == 4096
        assert "pox" in est.detail

    def test_lrd_flags(self):
        high = HurstEstimate(0.8, "rs", 100, {})
        low = HurstEstimate(0.4, "rs", 100, {})
        over = HurstEstimate(1.1, "rs", 100, {})
        assert high.is_long_range_dependent and high.is_self_similar_range
        assert not low.is_long_range_dependent
        assert over.is_long_range_dependent and not over.is_self_similar_range

    def test_aggregated_variance_detail_has_slope(self):
        x = fgn(4096, 0.7, rng=12)
        est = hurst_aggregated_variance(x)
        # beta = 2H - 2 must match the returned H.
        assert est.detail["slope"] == pytest.approx(2 * est.value - 2.0)

    def test_periodogram_detail(self):
        x = fgn(4096, 0.7, rng=13)
        est = hurst_periodogram(x)
        assert est.detail["bins"] >= 4


class TestValidation:
    def test_periodogram_needs_length(self):
        with pytest.raises(ValueError):
            hurst_periodogram(np.random.default_rng(0).normal(size=64))

    def test_periodogram_fraction_range(self):
        x = fgn(1024, 0.7, rng=14)
        with pytest.raises(ValueError):
            hurst_periodogram(x, fraction=0.0)
        with pytest.raises(ValueError):
            hurst_periodogram(x, fraction=0.9)

    def test_aggregated_variance_needs_length(self):
        with pytest.raises(ValueError):
            hurst_aggregated_variance(np.arange(16, dtype=float))
