"""Exporter tests: Prometheus text format and JSON-lines event logs."""

import json

from repro.obs.exporters import jsonl_events, render_jsonl, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _clock():
    return 5.0


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", host="a").inc(3)
        registry.gauge("repro_depth").set(1.5)
        text = render_prometheus(registry)
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{host="a"} 3' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 1.5" in text
        assert text.endswith("\n")

    def test_accepts_a_frozen_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        assert render_prometheus(registry.snapshot()) == render_prometheus(
            registry
        )

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        h = registry.histogram("repro_h", buckets=(0.5, 1.0))
        for v in (0.2, 0.7, 3.0):
            h.observe(v)
        text = render_prometheus(registry)
        assert 'repro_h_bucket{le="0.5"} 1' in text
        assert 'repro_h_bucket{le="1"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 3.9" in text
        assert "repro_h_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", path='we"ird\\val').inc()
        text = render_prometheus(registry)
        assert 'path="we\\"ird\\\\val"' in text

    def test_labels_sorted_within_a_line(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", zeta="z", alpha="a").inc()
        assert 'repro_x_total{alpha="a",zeta="z"} 1' in render_prometheus(registry)


class TestJsonLines:
    def test_metric_then_span_events(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(2)
        tracer = Tracer(clock=_clock)
        tracer.record("probe", 1.0, 2.0, host="a")
        events = jsonl_events(registry, tracer)
        assert events[0] == {
            "type": "metric",
            "kind": "counter",
            "name": "repro_x_total",
            "labels": {},
            "value": 2.0,
        }
        assert events[-1]["type"] == "span"
        assert events[-1]["attrs"] == {"host": "a"}

    def test_every_line_is_valid_json(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", buckets=(0.5,)).observe(0.1)
        registry.gauge("repro_nan").set(float("nan"))
        text = render_jsonl(registry)
        for line in text.strip().splitlines():
            json.loads(line)

    def test_nonfinite_values_round_trip_as_strings(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", buckets=(0.5,)).observe(0.1)
        registry.gauge("repro_nan").set(float("nan"))
        registry.gauge("repro_inf").set(float("inf"))
        lines = render_jsonl(registry).strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        by_name = {e["name"]: e for e in parsed}
        assert by_name["repro_nan"]["value"] == "NaN"
        assert by_name["repro_inf"]["value"] == "+Inf"
        assert by_name["repro_h"]["buckets"][-1][0] == "+Inf"

    def test_output_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.counter("repro_b_total", host="b").inc()
            registry.counter("repro_b_total", host="a").inc(2)
            registry.gauge("repro_a").set(0.25)
            return render_jsonl(registry)

        assert build() == build()
