"""Tests for repro.core.errors (paper Equations 3-5)."""

import numpy as np
import pytest

from repro.core.errors import (
    ErrorSummary,
    mean_absolute_error,
    mean_squared_error,
    measurement_errors,
    one_step_prediction_errors,
    root_mean_squared_error,
    true_forecasting_errors,
)


class TestMetrics:
    def test_mae(self):
        assert mean_absolute_error([0.5, 0.5], [0.3, 0.9]) == pytest.approx(0.3)

    def test_mse_and_rmse(self):
        assert mean_squared_error([1.0, 0.0], [0.0, 0.0]) == pytest.approx(0.5)
        assert root_mean_squared_error([1.0, 0.0], [0.0, 0.0]) == pytest.approx(
            np.sqrt(0.5)
        )

    def test_perfect_prediction(self):
        x = np.linspace(0, 1, 10)
        assert mean_absolute_error(x, x) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal shapes"):
            mean_absolute_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.ones((2, 2)), np.ones((2, 2)))


class TestSummaries:
    def test_measurement_errors_summary(self):
        s = measurement_errors([0.5, 0.7], [0.6, 0.6])
        assert isinstance(s, ErrorSummary)
        assert s.mae == pytest.approx(0.1)
        assert s.n == 2
        assert s.mae_percent == pytest.approx(10.0)

    def test_true_forecasting_errors(self):
        s = true_forecasting_errors([0.8], [0.5])
        assert s.mae == pytest.approx(0.3)

    def test_one_step_prediction_errors(self):
        s = one_step_prediction_errors([0.4, 0.4], [0.5, 0.3])
        assert s.mae == pytest.approx(0.1)
        assert s.rmse == pytest.approx(0.1)

    def test_rmse_dominates_mae(self):
        predicted = np.array([0.1, 0.9, 0.5])
        actual = np.array([0.2, 0.1, 0.5])
        s = measurement_errors(predicted, actual)
        assert s.rmse >= s.mae
