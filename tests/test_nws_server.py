"""ForecastServer: HTTP routing, maintenance cycle, retention compaction.

Dispatch tests call :meth:`ForecastServer.dispatch` directly (no socket);
the HTTP tests go through urllib against an ephemeral port to pin the
status codes and error envelopes actually seen on the wire.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.nws import ForecastServer, RetentionPolicy, ServiceCore
from repro.nws.server import SERVER_REGISTRATION
from repro.nws.wire import WIRE_VERSION, canonical
from repro.obs.metrics import MetricsRegistry, installed


def http(url: str, body: dict | None = None, method: str | None = None):
    """(status, payload) for one raw HTTP exchange."""
    data = canonical(body) if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestValidation:
    def test_bad_maintenance_interval(self):
        with pytest.raises(ValueError, match="maintenance_interval"):
            ForecastServer(maintenance_interval=0.0)

    def test_bad_registration_ttl(self):
        with pytest.raises(ValueError, match="registration_ttl"):
            ForecastServer(registration_ttl=-1.0)

    def test_core_kwargs_forwarded(self):
        server = ForecastServer(tenants=("a", "b"))
        assert server.core.tenant_names() == ["a", "b"]
        server._httpd.server_close()

    def test_double_start_rejected(self):
        with ForecastServer() as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()


class TestDispatch:
    @pytest.fixture()
    def server(self):
        server = ForecastServer(tenants=("default", "hpc"))
        yield server
        server._httpd.server_close()

    def test_health(self, server):
        status, payload = server.dispatch("GET", "/v1/health", {})
        assert status == 200
        assert payload["version"] == WIRE_VERSION
        assert payload["status"] == "ok"
        assert set(payload["tenants"]) == {"default", "hpc"}

    def test_metrics(self, server):
        status, payload = server.dispatch("GET", "/v1/metrics", {})
        assert status == 200
        assert payload["kind"] == "metrics"
        assert isinstance(payload["metrics"], dict)

    def test_series(self, server):
        server.core.publish("default", "cpu.a", 0.0, 0.5)
        status, payload = server.dispatch("GET", "/v1/default/series", {})
        assert status == 200
        assert payload["series"] == ["cpu.a"]

    def test_post_ops_route(self, server):
        status, payload = server.dispatch(
            "POST", "/v1/default/publish", {"series": "cpu.a", "time": 0.0, "value": 0.5}
        )
        assert status == 200
        assert payload["kind"] == "published" and payload["count"] == 1
        status, payload = server.dispatch(
            "POST", "/v1/default/fetch", {"series": "cpu.a"}
        )
        assert payload["kind"] == "samples" and payload["n"] == 1

    def test_unknown_path(self, server):
        with pytest.raises(LookupError, match="/v1"):
            server.dispatch("GET", "/nope", {})
        with pytest.raises(LookupError, match="no such path"):
            server.dispatch("GET", "/v1/a/b/c/d", {})

    def test_unknown_operation(self, server):
        with pytest.raises(LookupError, match="no such operation"):
            server.dispatch("POST", "/v1/default/frobnicate", {})

    def test_method_mismatch(self, server):
        with pytest.raises(ValueError, match="expects GET"):
            server.dispatch("POST", "/v1/health", {})
        with pytest.raises(ValueError, match="expects POST"):
            server.dispatch("GET", "/v1/default/publish", {})

    def test_missing_field(self, server):
        with pytest.raises(ValueError, match="missing required field 'series'"):
            server.dispatch("POST", "/v1/default/publish", {"time": 0.0, "value": 0.5})

    def test_bad_field_value(self, server):
        with pytest.raises(ValueError, match="bad value for field 'time'"):
            server.dispatch(
                "POST", "/v1/default/publish",
                {"series": "s", "time": "noon", "value": 0.5},
            )


class TestHTTP:
    @pytest.fixture()
    def server(self):
        with ForecastServer(tenants=("default",)) as srv:
            yield srv

    def test_health_live(self, server):
        status, payload = http(f"{server.url}/v1/health")
        assert status == 200 and payload["status"] == "ok"

    def test_unknown_path_is_404_envelope(self, server):
        status, payload = http(f"{server.url}/wrong")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_method_mismatch_is_400(self, server):
        status, payload = http(f"{server.url}/v1/health", body={})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/default/publish",
            data=b"this is not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400
        assert json.loads(info.value.read())["error"]["code"] == "bad_request"

    def test_unknown_tenant_is_403(self, server):
        status, payload = http(
            f"{server.url}/v1/nobody/publish",
            body={"series": "s", "time": 0.0, "value": 0.5},
        )
        assert status == 403
        assert payload["error"]["code"] == "unknown_tenant"
        assert payload["error"]["known"] == ["default"]

    def test_error_counted(self):
        with installed(MetricsRegistry()):
            with ForecastServer() as server:
                http(f"{server.url}/totally/wrong")
                assert server.core._obs_errors["not_found"].value == 1


class TestSelfRegistration:
    def test_registers_in_every_tenant(self):
        with ForecastServer(tenants=("default", "hpc")) as server:
            for tenant in ("default", "hpc"):
                registration = server.core.tenant(tenant).nameserver.get(
                    SERVER_REGISTRATION
                )
                assert registration.attributes["url"] == server.url

    def test_maintain_refreshes_ttl(self):
        clock = {"t": 0.0}
        core = ServiceCore(clock=lambda: clock["t"])
        with ForecastServer(core, registration_ttl=90.0) as server:
            clock["t"] = 80.0
            server.maintain_once()
            clock["t"] = 160.0  # past the original expiry, inside the refresh
            assert (
                server.core.tenant("default").nameserver.get(SERVER_REGISTRATION)
                is not None
            )

    def test_maintain_reregisters_after_lapse(self):
        clock = {"t": 0.0}
        core = ServiceCore(clock=lambda: clock["t"])
        with ForecastServer(core, registration_ttl=90.0) as server:
            clock["t"] = 1000.0  # stall long enough that the TTL lapsed
            server.maintain_once()
            registration = server.core.tenant("default").nameserver.get(
                SERVER_REGISTRATION
            )
            assert registration.attributes["url"] == server.url

    def test_maintenance_counter(self):
        with installed(MetricsRegistry()):
            with ForecastServer() as server:
                server.maintain_once()
                server.maintain_once()
                assert server._obs_maintenance.value == 2


class TestRetention:
    def fill(self, core: ServiceCore, series: str, n: int) -> None:
        rng = np.random.default_rng(5)
        for i in range(n):
            core.publish("default", series, 10.0 * i, float(rng.random()))

    def test_no_policy_is_noop(self):
        core = ServiceCore()
        self.fill(core, "cpu.a", 64)
        assert core.maintain() == 0
        assert core.tenant("default").memory.count("cpu.a") == 64

    def test_below_threshold_untouched(self):
        core = ServiceCore(
            retention=RetentionPolicy(compact_above=128, keep_recent=32, period=60.0)
        )
        self.fill(core, "cpu.a", 128)
        assert core.maintain() == 0
        assert core.tenant("default").memory.count("cpu.a") == 128

    def test_compaction_keeps_recent_raw(self):
        core = ServiceCore(
            retention=RetentionPolicy(compact_above=128, keep_recent=32, period=60.0)
        )
        self.fill(core, "cpu.a", 200)
        raw_times, raw_values = core.fetch("default", "cpu.a")
        assert core.maintain() == 1
        times, values = core.fetch("default", "cpu.a")
        assert len(times) < 200
        # The newest keep_recent samples survive at raw resolution.
        np.testing.assert_allclose(times[-32:], raw_times[-32:])
        np.testing.assert_allclose(values[-32:], raw_values[-32:])
        # The spliced history is still a valid (non-decreasing) series.
        assert np.all(np.diff(times) >= 0.0)

    def test_compaction_counts_series(self):
        core = ServiceCore(
            retention=RetentionPolicy(compact_above=64, keep_recent=16, period=120.0)
        )
        self.fill(core, "cpu.a", 100)
        self.fill(core, "cpu.b", 100)
        self.fill(core, "cpu.small", 10)
        assert core.maintain() == 2

    def test_queries_survive_compaction(self):
        core = ServiceCore(
            retention=RetentionPolicy(compact_above=128, keep_recent=64, period=60.0)
        )
        self.fill(core, "cpu.a", 300)
        before = core.query("default", "cpu.a")
        core.maintain()
        for i in range(300, 310):
            core.publish("default", "cpu.a", 10.0 * i, 0.5)
        after = core.query("default", "cpu.a")
        assert not after.stale
        assert 0.0 <= after.forecast <= 1.0
        assert after.n_measurements > before.n_measurements - 300

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="compact_above"):
            RetentionPolicy(compact_above=1)
        with pytest.raises(ValueError, match="keep_recent"):
            RetentionPolicy(compact_above=100, keep_recent=100)
        with pytest.raises(ValueError, match="period"):
            RetentionPolicy(period=0.0)
