"""Whole-program semantic analysis: symbols, call graph, and the three
interprocedural passes (DET002, UNIT002, THRD001).

Each pass has a seeded fixture proving a true positive its per-file
sibling cannot see: the violation only exists across a call boundary.
"""

from __future__ import annotations

import pytest

from repro.lint import check_source, project_from_sources
from repro.lint.semantic import (
    CrossBoundaryUnitRule,
    DeterminismTaintRule,
    SharedStateRaceRule,
    compute_taint,
    thread_entry_roots,
)

# ---------------------------------------------------------------- fixtures

CLOCK_HELPER = '''\
"""Helper outside the deterministic packages -- DET001 does not apply."""

import time


def wall_now():
    return time.time()
'''

SIM_USES_HELPER = '''\
"""Deterministic package module that launders a wall clock in."""

from repro.trace.clockutil import wall_now


def schedule():
    stamp = wall_now()
    return stamp
'''


def _findings(rule, project):
    return sorted(rule.check_project(project))


# ------------------------------------------------------- symbols/call graph


def test_symbol_table_indexes_functions_methods_and_nested():
    project = project_from_sources(
        {
            "repro.pkg.mod": (
                "class Store:\n"
                "    def publish(self, x):\n"
                "        def inner():\n"
                "            return x\n"
                "        return inner()\n"
                "def top():\n"
                "    return 1\n"
            )
        }
    )
    functions = project.symbols.functions
    assert "repro.pkg.mod.Store.publish" in functions
    assert "repro.pkg.mod.Store.publish.inner" in functions
    assert "repro.pkg.mod.top" in functions
    assert functions["repro.pkg.mod.Store.publish"].is_method
    assert not functions["repro.pkg.mod.top"].is_method


def test_callgraph_resolves_attribute_calls_through_attr_types():
    project = project_from_sources(
        {
            "repro.pkg.store": (
                "class Store:\n"
                "    def put(self, v):\n"
                "        return v\n"
            ),
            "repro.pkg.host": (
                "from repro.pkg.store import Store\n"
                "class Host:\n"
                "    def __init__(self, store: Store):\n"
                "        self.store = store\n"
                "    def push(self, v):\n"
                "        return self.store.put(v)\n"
            ),
        }
    )
    callees = project.callgraph.callees["repro.pkg.host.Host.push"]
    assert "repro.pkg.store.Store.put" in callees


def test_callgraph_never_guesses_unresolvable_calls():
    project = project_from_sources(
        {"repro.pkg.mod": "def f(x):\n    return x.anything()\n"}
    )
    (site,) = project.callgraph.sites["repro.pkg.mod.f"]
    assert site.callee is None


# ------------------------------------------------------------------ DET002


def test_det002_catches_laundered_wall_clock_that_det001_misses():
    project = project_from_sources(
        {
            "repro.trace.clockutil": CLOCK_HELPER,
            "repro.sim.engine": SIM_USES_HELPER,
        }
    )
    (finding,) = _findings(DeterminismTaintRule(), project)
    assert finding.rule_id == "DET002"
    assert finding.path.endswith("repro/sim/engine.py")
    assert "wall_now" in finding.message
    assert "time.time" in finding.message
    # The per-file determinism rule is silent on the same sim module: the
    # helper lives outside DET001's scope and the call site looks benign.
    per_file = check_source(
        SIM_USES_HELPER, module="repro.sim.engine", select=["DET001"]
    )
    assert per_file.findings == []


def test_det002_skips_direct_source_calls_in_det001_jurisdiction():
    project = project_from_sources(
        {
            "repro.sim.engine": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            )
        }
    )
    assert _findings(DeterminismTaintRule(), project) == []


def test_det002_flags_tainted_argument_flowing_into_protected_package():
    project = project_from_sources(
        {
            "repro.sim.engine": "def advance(until):\n    return until\n",
            "repro.experiments.driver": (
                "import time\n"
                "from repro.sim.engine import advance\n"
                "def run():\n"
                "    deadline = time.time() + 5.0\n"
                "    return advance(deadline)\n"
            ),
        }
    )
    (finding,) = _findings(DeterminismTaintRule(), project)
    assert finding.path.endswith("repro/experiments/driver.py")
    assert "advance" in finding.message


def test_det002_propagates_through_instance_attributes():
    project = project_from_sources(
        {
            "repro.trace.meta": (
                "import time\n"
                "class RunStamp:\n"
                "    def __init__(self):\n"
                "        self.started = time.time()\n"
                "    def start(self):\n"
                "        return self.started\n"
            ),
            "repro.core.predictorx": (
                "from repro.trace.meta import RunStamp\n"
                "def origin(stamp: RunStamp):\n"
                "    return stamp.start()\n"
            ),
        }
    )
    (finding,) = _findings(DeterminismTaintRule(), project)
    assert finding.path.endswith("repro/core/predictorx.py")


def test_det002_clean_when_values_are_injected():
    project = project_from_sources(
        {
            "repro.sim.engine": (
                "def advance(clock):\n"
                "    return clock()\n"
            ),
            "repro.experiments.driver": (
                "from repro.sim.engine import advance\n"
                "def run(now):\n"
                "    return advance(now)\n"
            ),
        }
    )
    assert _findings(DeterminismTaintRule(), project) == []


def test_compute_taint_records_provenance_chain():
    project = project_from_sources({"repro.trace.clockutil": CLOCK_HELPER})
    state = compute_taint(project)
    desc = state.tainted_returns["repro.trace.clockutil.wall_now"]
    assert "time.time" in desc
    assert "wall_now" in desc


# ------------------------------------------------------------------ UNIT002


def test_unit002_catches_cross_boundary_mixup_that_unit001_misses():
    callee = "def utilisation(cpu_pct):\n    return cpu_pct / 100.0\n"
    caller = (
        "from repro.analysis.report import utilisation\n"
        "def summarise(avail_frac):\n"
        "    return utilisation(avail_frac)\n"
    )
    project = project_from_sources(
        {"repro.analysis.report": callee, "repro.experiments.summary": caller}
    )
    (finding,) = _findings(CrossBoundaryUnitRule(), project)
    assert finding.rule_id == "UNIT002"
    assert "'frac'" in finding.message and "'pct'" in finding.message
    # UNIT001 sees each file alone and has no mixed-unit expression.
    assert check_source(callee, select=["UNIT001"]).findings == []
    assert check_source(caller, select=["UNIT001"]).findings == []


def test_unit002_accepts_matching_units_and_explicit_conversions():
    project = project_from_sources(
        {
            "repro.analysis.report": (
                "def utilisation(cpu_pct):\n    return cpu_pct\n"
            ),
            "repro.experiments.summary": (
                "from repro.analysis.report import utilisation\n"
                "def ok(load_pct, avail_frac):\n"
                "    utilisation(load_pct)\n"
                "    utilisation(avail_frac * 100.0)\n"
            ),
        }
    )
    assert _findings(CrossBoundaryUnitRule(), project) == []


def test_unit002_infers_fraction_from_ensure_fraction_contract():
    project = project_from_sources(
        {
            "repro.core.predictorx": (
                "from repro.lint.contracts import ensure_fraction\n"
                "def predict(value):\n"
                "    return ensure_fraction(value)\n"
            ),
            "repro.experiments.driver": (
                "from repro.core.predictorx import predict\n"
                "def run(elapsed_seconds):\n"
                "    return predict(elapsed_seconds)\n"
            ),
        }
    )
    (finding,) = _findings(CrossBoundaryUnitRule(), project)
    assert "'seconds'" in finding.message and "'frac'" in finding.message


def test_unit002_checks_keyword_arguments():
    project = project_from_sources(
        {
            "repro.analysis.report": (
                "def window(span_seconds=10.0):\n    return span_seconds\n"
            ),
            "repro.experiments.driver": (
                "from repro.analysis.report import window\n"
                "def run(timeout_ms):\n"
                "    return window(span_seconds=timeout_ms)\n"
            ),
        }
    )
    (finding,) = _findings(CrossBoundaryUnitRule(), project)
    assert "span_seconds" in finding.message


# ------------------------------------------------------------------ THRD001


RACY_STORE = '''\
class Store:
    def __init__(self):
        self._items = {}
    def record(self, key, value):
        self._items[key] = value
'''


def test_thrd001_flags_unsynchronized_write_reached_from_executor():
    project = project_from_sources(
        {
            "repro.runner.store": RACY_STORE,
            "repro.runner.engine": (
                "from concurrent.futures import ThreadPoolExecutor\n"
                "from repro.runner.store import Store\n"
                "def _job(store: Store):\n"
                "    store.record('k', 1)\n"
                "def run(store):\n"
                "    with ThreadPoolExecutor() as pool:\n"
                "        pool.submit(_job, store)\n"
            ),
        }
    )
    (finding,) = _findings(SharedStateRaceRule(), project)
    assert finding.rule_id == "THRD001"
    assert "self._items" in finding.message
    assert "executor" in finding.message


def test_thrd001_exempts_lock_guarded_writes_and_init():
    project = project_from_sources(
        {
            "repro.runner.store": (
                "import threading\n"
                "class Store:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = {}\n"
                "    def record(self, key, value):\n"
                "        with self._lock:\n"
                "            self._items[key] = value\n"
            ),
            "repro.runner.engine": (
                "from concurrent.futures import ThreadPoolExecutor\n"
                "from repro.runner.store import Store\n"
                "def _job(store: Store):\n"
                "    store.record('k', 1)\n"
                "def run(store):\n"
                "    with ThreadPoolExecutor() as pool:\n"
                "        pool.submit(_job, store)\n"
            ),
        }
    )
    assert _findings(SharedStateRaceRule(), project) == []


def test_thrd001_thread_target_and_callback_are_roots():
    project = project_from_sources(
        {
            "repro.obs.collect": (
                "import threading\n"
                "_seen = {}\n"
                "def _collect(r):\n"
                "    _seen['n'] = 1\n"
                "def install(registry):\n"
                "    registry.register_callback(_collect)\n"
                "def spawn():\n"
                "    threading.Thread(target=_collect).start()\n"
            )
        }
    )
    roots = thread_entry_roots(project)
    assert "repro.obs.collect._collect" in roots
    findings = _findings(SharedStateRaceRule(), project)
    assert len(findings) == 1
    assert "'_seen'" in findings[0].message


def test_thrd001_nws_pump_is_a_root_by_convention():
    project = project_from_sources(
        {
            "repro.nws.hostx": (
                "class HostX:\n"
                "    def __init__(self):\n"
                "        self._rounds = []\n"
                "    def pump(self, until):\n"
                "        self._rounds.append(until)\n"
            )
        }
    )
    (finding,) = _findings(SharedStateRaceRule(), project)
    assert "self._rounds" in finding.message
    assert "pump" in finding.message


def test_thrd001_out_of_scope_packages_never_flagged():
    project = project_from_sources(
        {
            "repro.sim.hostx": (
                "class HostX:\n"
                "    def __init__(self):\n"
                "        self._events = []\n"
                "    def pump(self, until):\n"
                "        self._events.append(until)\n"
            )
        }
    )
    assert _findings(SharedStateRaceRule(), project) == []


# --------------------------------------------------------- runner plumbing


def test_semantic_findings_flow_through_check_source_and_suppressions():
    source = (
        "import time\n"
        "def helper():\n"
        "    return time.time()\n"
        "def schedule():\n"
        "    return helper()\n"
    )
    result = check_source(source, module="repro.sim.engine")
    # DET001 fires on the direct source call, DET002 on the laundered one.
    assert [f.rule_id for f in result.findings] == ["DET001", "DET002"]

    suppressed = source.replace(
        "    return time.time()",
        "    return time.time()  # lint: ignore[DET001] -- fixture",
    ).replace(
        "    return helper()",
        "    return helper()  # lint: ignore[DET002] -- fixture",
    )
    result = check_source(suppressed, module="repro.sim.engine")
    assert result.findings == []
    assert sorted(f.rule_id for f in result.suppressed) == ["DET001", "DET002"]


def test_semantic_rules_selectable_by_id():
    source = (
        "import time\n"
        "def helper():\n"
        "    return time.time()\n"
        "def schedule():\n"
        "    return helper()\n"
    )
    selected = check_source(source, module="repro.sim.engine", select=["DET002"])
    assert [f.rule_id for f in selected.findings] == ["DET002"]
    ignored = check_source(source, module="repro.sim.engine", ignore=["DET002"])
    assert [f.rule_id for f in ignored.findings] == ["DET001"]


def test_duplicate_rule_id_registration_rejected():
    from repro.lint.registry import Rule, register

    with pytest.raises(ValueError, match="duplicate rule id"):

        @register
        class Clash(Rule):  # pragma: no cover - never runs
            rule_id = "DET002"
            title = "clash"

            def check(self, ctx):
                return iter(())
