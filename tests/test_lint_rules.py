"""Per-rule positive/negative fixtures for the domain linter.

Every rule gets at least one snippet that must fire and one that must
stay silent; fixtures go through :func:`repro.lint.check_source`, i.e.
the same ``ast.parse`` + scoping + suppression path as real files.
"""

from __future__ import annotations

import textwrap

from repro.lint import check_source
from repro.lint.runner import PARSE_RULE_ID


def findings(source: str, *, module: str = "", select: list[str] | None = None):
    result = check_source(textwrap.dedent(source), module=module, select=select)
    return result


def rule_ids(source: str, *, module: str = "", select: list[str] | None = None):
    return [f.rule_id for f in findings(source, module=module, select=select).findings]


# -----------------------------------------------------------------------
# DET001 -- determinism
# -----------------------------------------------------------------------

class TestDeterminism:
    def test_wall_clock_flagged_in_sim(self):
        src = """
        import time

        def stamp():
            return time.time()
        """
        assert rule_ids(src, module="repro.sim.fake") == ["DET001"]

    def test_from_import_alias_flagged(self):
        src = """
        from time import time as now

        def stamp():
            return now()
        """
        assert rule_ids(src, module="repro.core.fake") == ["DET001"]

    def test_datetime_now_flagged(self):
        src = """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """
        assert rule_ids(src, module="repro.analysis.fake") == ["DET001"]

    def test_global_numpy_rng_flagged(self):
        src = """
        import numpy as np

        def noise():
            np.random.seed(3)
            return np.random.uniform()
        """
        assert rule_ids(src, module="repro.sim.fake") == ["DET001", "DET001"]

    def test_module_level_random_flagged(self):
        src = """
        import random

        def pick():
            return random.random()
        """
        assert rule_ids(src, module="repro.sim.fake") == ["DET001"]

    def test_unseeded_default_rng_flagged(self):
        src = """
        import numpy as np

        def make():
            return np.random.default_rng()
        """
        assert rule_ids(src, module="repro.core.fake") == ["DET001"]

    def test_injected_generator_ok(self):
        src = """
        import numpy as np

        def draw(rng: np.random.Generator) -> float:
            return rng.uniform()

        def make(seed):
            return np.random.default_rng(np.random.SeedSequence(seed))
        """
        assert rule_ids(src, module="repro.sim.fake") == []

    def test_out_of_scope_module_not_flagged(self):
        src = """
        import time

        def stamp():
            return time.monotonic()
        """
        assert rule_ids(src, module="repro.live.probe2") == []
        assert rule_ids(src, module="") == []


# -----------------------------------------------------------------------
# UNIT001 -- unit safety
# -----------------------------------------------------------------------

class TestUnitSafety:
    def test_mixed_unit_addition_flagged(self):
        src = """
        def total(duration_seconds, timeout_ms):
            return duration_seconds + timeout_ms
        """
        assert rule_ids(src) == ["UNIT001"]

    def test_pct_vs_frac_comparison_flagged(self):
        src = """
        def busy(cpu_pct, idle_frac):
            return cpu_pct > idle_frac
        """
        assert rule_ids(src) == ["UNIT001"]

    def test_availability_literal_out_of_range_flagged(self):
        src = """
        def usable(availability):
            return availability > 30
        """
        assert rule_ids(src) == ["UNIT001"]

    def test_same_unit_and_conversion_ok(self):
        src = """
        def fine(run_seconds, wait_seconds, avail_frac):
            total_seconds = run_seconds + wait_seconds
            pct = avail_frac * 100.0
            return total_seconds if avail_frac > 0.3 else pct
        """
        assert rule_ids(src) == []


# -----------------------------------------------------------------------
# PROTO001 -- forecaster protocol
# -----------------------------------------------------------------------

class TestForecasterProtocol:
    def test_missing_forecast_flagged(self):
        src = """
        class Broken(Forecaster):
            __slots__ = ("_x",)

            def update(self, value):
                self._x = value
        """
        ids = rule_ids(src)
        assert ids == ["PROTO001"]
        assert "forecast" in findings(src).findings[0].message

    def test_forecast_with_positional_arg_flagged(self):
        src = """
        class Broken(Forecaster):
            __slots__ = ()

            def update(self, value):
                pass

            def forecast(self, horizon):
                return 0.0
        """
        assert rule_ids(src) == ["PROTO001"]

    def test_missing_slots_flagged(self):
        src = """
        class Broken(Forecaster):
            def update(self, value):
                pass

            def forecast(self):
                return 0.0
        """
        ids = rule_ids(src)
        assert ids == ["PROTO001"]
        assert "__slots__" in findings(src).findings[0].message

    def test_complete_subclass_ok(self):
        src = """
        class Fine(Forecaster):
            __slots__ = ("_last",)

            def update(self, value):
                self._last = value

            def forecast(self):
                return self._last
        """
        assert rule_ids(src) == []

    def test_methods_inherited_from_intermediate_base_ok(self):
        src = """
        class _Base(Forecaster):
            __slots__ = ("_v",)

            def update(self, value):
                self._v = value

            def forecast(self):
                return self._estimate()

        class Leaf(_Base):
            __slots__ = ()

            def _estimate(self):
                return self._v
        """
        assert rule_ids(src) == []

    def test_unrelated_class_ignored(self):
        src = """
        class NotAForecaster:
            def forecast(self, a, b):
                return a + b
        """
        assert rule_ids(src) == []


# -----------------------------------------------------------------------
# MUT001 -- mutable default arguments
# -----------------------------------------------------------------------

class TestMutableDefaults:
    def test_list_literal_default_flagged(self):
        assert rule_ids("def f(x=[]):\n    return x\n") == ["MUT001"]

    def test_constructor_call_default_flagged(self):
        assert rule_ids("def f(*, x=dict()):\n    return x\n") == ["MUT001"]

    def test_none_default_ok(self):
        src = """
        def f(x=None, y=(), z="s"):
            return x, y, z
        """
        assert rule_ids(src) == []


# -----------------------------------------------------------------------
# HEAP001 -- heap stability
# -----------------------------------------------------------------------

class TestHeapStability:
    def test_tuple_without_tiebreaker_flagged(self):
        src = """
        import heapq

        def push(heap, deadline, callback):
            heapq.heappush(heap, (deadline, callback))
        """
        assert rule_ids(src) == ["HEAP001"]

    def test_non_tuple_push_flagged(self):
        src = """
        import heapq

        def push(heap, deadline):
            heapq.heappush(heap, deadline)
        """
        assert rule_ids(src) == ["HEAP001"]

    def test_next_counter_tiebreaker_ok(self):
        src = """
        import heapq

        def push(heap, deadline, counter, callback):
            heapq.heappush(heap, (deadline, next(counter), callback))
        """
        assert rule_ids(src) == []

    def test_from_import_with_counter_name_ok(self):
        src = """
        from heapq import heappush

        def push(heap, deadline, seq, callback):
            heappush(heap, (deadline, seq, callback))
        """
        assert rule_ids(src) == []


# -----------------------------------------------------------------------
# EXC001 -- bare except / swallowed errors
# -----------------------------------------------------------------------

class TestSwallowedErrors:
    def test_bare_except_flagged_in_nws(self):
        src = """
        def publish(memory):
            try:
                memory.flush()
            except:
                raise RuntimeError("flush failed")
        """
        assert rule_ids(src, module="repro.nws.fake") == ["EXC001"]

    def test_swallowing_handler_flagged_in_live(self):
        src = """
        def sample(path):
            try:
                return open(path).read()
            except OSError:
                pass
        """
        assert rule_ids(src, module="repro.live.fake") == ["EXC001"]

    def test_handled_exception_ok(self):
        src = """
        def sample(path):
            try:
                return open(path).read()
            except OSError as exc:
                return f"unavailable: {exc}"
        """
        assert rule_ids(src, module="repro.nws.fake") == []

    def test_out_of_scope_module_not_flagged(self):
        src = """
        def quiet():
            try:
                return 1
            except ValueError:
                pass
        """
        assert rule_ids(src, module="repro.sim.fake") == []


# -----------------------------------------------------------------------
# OBS001 -- observability hygiene
# -----------------------------------------------------------------------

class TestObservability:
    def test_unmanaged_span_flagged(self):
        src = """
        def query(tracer):
            span = tracer.span("nws.query")
            span.__enter__()
            return 1
        """
        assert rule_ids(src, module="repro.nws.fake") == ["OBS001"]

    def test_context_managed_span_ok(self):
        src = """
        def query(tracer):
            with tracer.span("nws.query") as span:
                span.annotate(hit=True)
        """
        assert rule_ids(src, module="repro.nws.fake") == []

    def test_span_in_multi_item_with_ok(self):
        src = """
        def query(tracer, lock):
            with lock, tracer.span("nws.query"):
                return 1
        """
        assert rule_ids(src, module="repro.nws.fake") == []

    def test_print_flagged_in_instrumented_layers(self):
        src = """
        def debug(x):
            print(x)
        """
        for module in ("repro.sim.fake", "repro.nws.fake", "repro.core.fake"):
            assert rule_ids(src, module=module) == ["OBS001"], module

    def test_print_allowed_outside_instrumented_layers(self):
        src = """
        def show(x):
            print(x)
        """
        assert rule_ids(src, module="repro.report.fake") == []
        assert rule_ids(src, module="repro.sensors.fake") == []

    def test_non_span_attribute_calls_ignored(self):
        src = """
        def f(obj):
            return obj.spawn("x")
        """
        assert rule_ids(src, module="repro.nws.fake") == []


# -----------------------------------------------------------------------
# CACHE001 -- runner discipline
# -----------------------------------------------------------------------

class TestCacheBypass:
    def test_direct_import_flagged(self):
        src = """
        from repro.experiments.testbed import run_host

        def go():
            return run_host("thing1")
        """
        assert rule_ids(src, module="repro.report.fake") == ["CACHE001"]

    def test_package_import_flagged(self):
        src = """
        from repro.experiments import run_host
        """
        assert rule_ids(src, module="repro.analysis.fake") == ["CACHE001"]

    def test_attribute_call_flagged(self):
        src = """
        import repro.experiments.testbed as tb

        def go():
            return tb.run_host("thing1")
        """
        assert rule_ids(src, module="repro.report.fake") == ["CACHE001"]

    def test_allowed_inside_runner_package(self):
        src = """
        from repro.experiments.testbed import run_host
        """
        assert rule_ids(src, module="repro.runner.engine") == []
        assert rule_ids(src, module="repro.runner") == []

    def test_allowed_inside_shim_modules(self):
        src = """
        def run_host(name):
            return name
        """
        assert rule_ids(src, module="repro.experiments.testbed") == []
        assert rule_ids(src, module="repro.experiments") == []

    def test_runner_use_stays_silent(self):
        src = """
        from repro.runner import Runner

        def go(config):
            return Runner(jobs=4).run(None, config)
        """
        assert rule_ids(src, module="repro.report.fake") == []

    def test_other_imports_from_testbed_ok(self):
        src = """
        from repro.experiments.testbed import TestbedConfig, simulate_host
        """
        assert rule_ids(src, module="repro.report.fake") == []


# -----------------------------------------------------------------------
# VEC001 -- vectorized backtesting discipline
# -----------------------------------------------------------------------

class TestVectorizedBacktest:
    def test_bank_import_flagged_in_experiments(self):
        src = """
        from repro.core.mixture import ForecasterBank
        """
        assert rule_ids(src, module="repro.experiments.fake") == ["VEC001"]

    def test_bank_package_import_flagged(self):
        src = """
        from repro.core import ForecasterBank
        """
        assert rule_ids(src, module="repro.experiments.fake") == ["VEC001"]

    def test_bank_attribute_construction_flagged(self):
        src = """
        import repro.core.mixture as mix

        def backtest(values):
            return mix.ForecasterBank()
        """
        assert rule_ids(src, module="repro.experiments.fake") == ["VEC001"]

    def test_hand_rolled_update_forecast_loop_flagged(self):
        src = """
        def backtest(model, values):
            out = []
            for v in values[1:]:
                out.append(model.forecast())
                model.update(v)
            return out
        """
        assert rule_ids(src, module="repro.experiments.fake") == ["VEC001"]

    def test_update_only_loop_silent(self):
        src = """
        def warm(model, values):
            for v in values:
                model.update(v)
        """
        assert rule_ids(src, module="repro.experiments.fake") == []

    def test_forecast_series_use_silent(self):
        src = """
        from repro.core.mixture import forecast_series

        def backtest(values):
            return forecast_series(values, engine="batch")
        """
        assert rule_ids(src, module="repro.experiments.fake") == []

    def test_out_of_scope_module_silent(self):
        src = """
        from repro.core.mixture import ForecasterBank
        """
        assert rule_ids(src, module="repro.core.fake") == []
        assert rule_ids(src, module="benchmarks.fake") == []


# -----------------------------------------------------------------------
# VEC002 -- simulation entry discipline
# -----------------------------------------------------------------------

class TestSimulationEntry:
    def test_run_until_flagged_in_experiments(self):
        src = """
        def study(host):
            host.run_until(3600.0)
        """
        assert rule_ids(src, module="repro.experiments.fake") == ["VEC002"]

    def test_kernel_run_until_flagged_outside_packages(self):
        src = """
        from repro.sim.kernel import Kernel

        def bench():
            k = Kernel()
            k.run_until(86400.0)
        """
        assert rule_ids(src, module="") == ["VEC002"]

    def test_sim_layer_itself_silent(self):
        src = """
        def drive(kernel):
            kernel.run_until(10.0)
        """
        assert rule_ids(src, module="repro.sim.host") == []

    def test_runner_silent(self):
        src = """
        def drive(host):
            host.run_until(10.0)
        """
        assert rule_ids(src, module="repro.runner.local") == []

    def test_testbed_dispatch_site_silent(self):
        src = """
        def simulate_host(host, duration):
            host.run_until(duration)
        """
        assert rule_ids(src, module="repro.experiments.testbed") == []

    def test_simulate_host_use_silent(self):
        src = """
        from repro.experiments.testbed import TestbedConfig, simulate_host

        def study():
            return simulate_host("kongo", TestbedConfig(duration=3600.0))
        """
        assert rule_ids(src, module="repro.experiments.fake") == []

    def test_tests_directory_silent(self):
        src = """
        def test_kernel(host):
            host.run_until(3600.0)
        """
        result = findings(src, module="")
        assert [f.rule_id for f in result.findings] == ["VEC002"]
        result = check_source(
            textwrap.dedent(src), path="tests/test_sim_fake.py", module=""
        )
        assert [f.rule_id for f in result.findings] == []

    def test_suppression_honoured(self):
        src = """
        def study(host):
            host.run_until(3600.0)  # lint: ignore[VEC002] -- raw-layer demo
        """
        assert rule_ids(src, module="repro.experiments.fake") == []


# -----------------------------------------------------------------------
# FAULT001 -- resilience discipline
# -----------------------------------------------------------------------

class TestResilience:
    def test_broad_except_continue_flagged_in_runner(self):
        src = """
        def collect(futures):
            out = []
            for future in futures:
                try:
                    out.append(future.result())
                except Exception:
                    continue
            return out
        """
        assert rule_ids(src, module="repro.runner.fake") == ["FAULT001"]

    def test_bare_except_continue_flagged_in_nws(self):
        src = """
        def pump(rounds):
            for row in rounds:
                try:
                    publish(row)
                except:
                    continue
        """
        # EXC001 also fires on the bare except (shared repro.nws scope).
        assert sorted(rule_ids(src, module="repro.nws.fake")) == [
            "EXC001",
            "FAULT001",
        ]

    def test_broad_tuple_pass_only_flagged(self):
        src = """
        def drain(queue):
            while queue:
                try:
                    queue.pop()
                except (ValueError, Exception):
                    pass
        """
        assert rule_ids(src, module="repro.runner.fake") == ["FAULT001"]

    def test_sleep_in_loop_flagged(self):
        src = """
        import time

        def wait_for(check):
            for _ in range(5):
                if check():
                    return True
                time.sleep(1.0)
            return False
        """
        assert rule_ids(src, module="repro.runner.fake") == ["FAULT001"]

    def test_specific_except_continue_silent(self):
        src = """
        def recover(lines):
            out = []
            for line in lines:
                try:
                    out.append(parse(line))
                except (ValueError, KeyError):
                    continue
            return out
        """
        assert rule_ids(src, module="repro.runner.fake") == []

    def test_broad_except_with_real_handling_silent(self):
        src = """
        def collect(futures):
            out, failed = [], {}
            for key, future in futures:
                try:
                    result = future.result()
                except Exception as exc:
                    failed[key] = exc
                else:
                    out.append(result)
            return out, failed
        """
        assert rule_ids(src, module="repro.runner.fake") == []

    def test_nested_loop_continue_belongs_to_inner_loop(self):
        src = """
        def outer(groups):
            for group in groups:
                try:
                    handle(group)
                except Exception as exc:
                    for item in group:
                        if not item:
                            continue
                        record(item, exc)
                    raise
        """
        assert rule_ids(src, module="repro.runner.fake") == []

    def test_sleep_outside_loop_silent(self):
        src = """
        import time

        def settle():
            time.sleep(0.5)
        """
        assert rule_ids(src, module="repro.runner.fake") == []

    def test_out_of_scope_module_silent(self):
        src = """
        import time

        def poll(check):
            while not check():
                time.sleep(1.0)
        """
        assert rule_ids(src, module="repro.live.fake") == []


# -----------------------------------------------------------------------
# OBS002 -- metric naming and inventory
# -----------------------------------------------------------------------

class TestMetricInventory:
    def test_bad_scheme_flagged(self):
        src = """
        def instrument(registry):
            registry.counter("my_ticks_total").inc()
        """
        result = findings(src, module="repro.sim.fake", select=["OBS002"])
        assert [f.rule_id for f in result.findings] == ["OBS002"]
        assert "repro_<layer>_<name>" in result.findings[0].message

    def test_two_segment_name_flagged(self):
        src = """
        def instrument(registry):
            registry.gauge("repro_jobs").set(1)
        """
        ids = rule_ids(src, module="repro.runner.fake", select=["OBS002"])
        assert "OBS002" in ids

    def test_counter_without_total_suffix_flagged(self):
        src = """
        def instrument(registry):
            registry.counter("repro_sim_ticks").inc()
        """
        result = findings(src, module="repro.sim.fake", select=["OBS002"])
        assert any("_total" in f.message for f in result.findings)

    def test_gauge_with_total_suffix_flagged(self):
        src = """
        def instrument(registry):
            registry.gauge("repro_sim_ticks_total").set(1)
        """
        result = findings(src, module="repro.sim.fake", select=["OBS002"])
        assert any("reserved for counters" in f.message for f in result.findings)

    def test_undocumented_metric_flagged(self):
        src = """
        def instrument(registry):
            registry.counter("repro_sim_undocumented_widget_total").inc()
        """
        result = findings(src, module="repro.sim.fake", select=["OBS002"])
        assert [f.rule_id for f in result.findings] == ["OBS002"]
        assert "inventory" in result.findings[0].message

    def test_inventoried_metrics_pass(self):
        src = """
        def instrument(registry):
            registry.counter("repro_sim_ticks_total").inc()
            registry.gauge("repro_sim_load_average", host="a").set(0.5)
            registry.histogram("repro_runner_host_seconds", host="a").observe(1.0)
        """
        assert rule_ids(src, module="repro.sim.fake", select=["OBS002"]) == []

    def test_dynamic_names_skipped(self):
        # Only literal first arguments are checkable statically.
        src = """
        def instrument(registry, name):
            registry.counter(name).inc()
        """
        assert rule_ids(src, module="repro.sim.fake", select=["OBS002"]) == []

    def test_out_of_scope_module_ignored(self):
        src = """
        def instrument(registry):
            registry.counter("whatever").inc()
        """
        assert rule_ids(src, module="somepkg.fake", select=["OBS002"]) == []


# -----------------------------------------------------------------------
# Suppressions, selection, parse errors
# -----------------------------------------------------------------------

class TestMachinery:
    SRC = """
    import time

    def stamp():
        return time.time()  # lint: ignore[DET001] -- fixture exercising suppression
    """

    def test_targeted_suppression(self):
        result = findings(self.SRC, module="repro.sim.fake")
        assert result.findings == []
        assert [f.rule_id for f in result.suppressed] == ["DET001"]

    def test_blanket_suppression(self):
        src = self.SRC.replace("ignore[DET001]", "ignore")
        result = findings(src, module="repro.sim.fake")
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_wrong_rule_in_suppression_keeps_finding(self):
        src = self.SRC.replace("ignore[DET001]", "ignore[MUT001]")
        result = findings(src, module="repro.sim.fake")
        assert [f.rule_id for f in result.findings] == ["DET001"]

    def test_select_limits_rules(self):
        src = """
        def f(x=[]):
            return x
        """
        assert rule_ids(src, select=["DET001"]) == []
        assert rule_ids(src, select=["MUT001"]) == ["MUT001"]

    def test_syntax_error_reported(self):
        result = findings("def broken(:\n")
        assert [f.rule_id for f in result.findings] == [PARSE_RULE_ID]

    def test_findings_carry_location(self):
        result = findings(self.SRC.replace("  # lint: ignore[DET001] -- fixture exercising suppression", ""), module="repro.sim.fake")
        (finding,) = result.findings
        assert finding.line == 5
        assert finding.rule_id == "DET001"
        assert "time.time" in finding.message


# -----------------------------------------------------------------------
# API001 -- service API discipline
# -----------------------------------------------------------------------

class TestServiceFacade:
    def test_direct_import_flagged(self):
        src = """
        from repro.nws.memory import MemoryStore

        def build():
            return MemoryStore(capacity=10)
        """
        assert rule_ids(src, module="repro.schedapp.fake") == ["API001"]

    def test_package_reexport_import_flagged(self):
        src = """
        from repro.nws import ForecasterService
        """
        assert rule_ids(src, module="repro.experiments.fake") == ["API001"]

    def test_attribute_construction_flagged(self):
        src = """
        import repro.nws.forecaster as fc

        def build(memory):
            return fc.ForecasterService(memory)
        """
        assert rule_ids(src, module="repro.report.fake") == ["API001"]

    def test_allowed_inside_nws_package(self):
        src = """
        from repro.nws.memory import MemoryStore

        def build():
            return MemoryStore(capacity=10)
        """
        assert rule_ids(src, module="repro.nws.service") == []
        assert rule_ids(src, module="repro.nws") == []

    def test_client_usage_clean(self):
        src = """
        from repro.nws import NWSClient

        def build():
            client = NWSClient.in_process()
            client.publish("cpu.a", time=0.0, value=0.5)
            return client
        """
        assert rule_ids(src, module="repro.schedapp.fake") == []

    def test_unrelated_names_from_nws_clean(self):
        src = """
        from repro.nws import NWSSystem, SeriesUnavailable
        """
        assert rule_ids(src, module="repro.experiments.fake") == []


# -----------------------------------------------------------------------
# DUR001 -- durability discipline
# -----------------------------------------------------------------------

class TestDurability:
    def test_bare_write_open_flagged_in_nws(self):
        src = """
        def save(path, data):
            with open(path, "w") as f:
                f.write(data)
        """
        assert rule_ids(src, module="repro.nws.fake", select=["DUR001"]) == [
            "DUR001"
        ]

    def test_mode_keyword_and_path_open_flagged(self):
        src = """
        def save(path, data):
            with open(path, mode="wb") as f:
                f.write(data)
            with path.open("x") as f:
                f.write(data)
        """
        assert rule_ids(src, module="repro.nws.fake", select=["DUR001"]) == [
            "DUR001",
            "DUR001",
        ]

    def test_write_text_and_write_bytes_flagged(self):
        src = """
        def save(path):
            path.write_text("boom")
            path.write_bytes(b"boom")
        """
        assert rule_ids(src, module="repro.nws.fake", select=["DUR001"]) == [
            "DUR001",
            "DUR001",
        ]

    def test_read_modes_are_fine(self):
        src = """
        def load(path):
            with open(path) as f:
                body = f.read()
            with open(path, "rb") as f:
                raw = f.read()
            text = path.read_text()
            return body, raw, text
        """
        assert rule_ids(src, module="repro.nws.fake", select=["DUR001"]) == []

    def test_durable_module_itself_is_exempt(self):
        src = """
        def helper(path, data):
            with open(path, "wb") as f:
                f.write(data)
        """
        assert rule_ids(src, module="repro.nws.durable", select=["DUR001"]) == []

    def test_out_of_scope_packages_untouched(self):
        src = """
        def save(path, data):
            with open(path, "w") as f:
                f.write(data)
        """
        assert rule_ids(src, module="repro.runner.fake", select=["DUR001"]) == []

    def test_nonliteral_mode_is_not_guessed(self):
        src = """
        def save(path, data, mode):
            with open(path, mode) as f:
                f.write(data)
        """
        assert rule_ids(src, module="repro.nws.fake", select=["DUR001"]) == []
