"""Tests for repro.experiments.figures (structure + shape invariants)."""

import numpy as np
import pytest

from repro.analysis.acf import acf_confidence_band
from repro.experiments.figures import figure1, figure2, figure3, figure4

from tests.conftest import SHORT, SHORT_MEDIUM

HOURS4 = SHORT.duration
SEED = SHORT.seed


class TestFigure1:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure1(seed=SEED, duration=HOURS4)

    def test_panels(self, fig):
        assert set(fig.panels) == {"thing1", "thing2"}
        for data in fig.panels.values():
            assert set(data) == {"time_hours", "availability_percent"}
            assert data["time_hours"].shape == data["availability_percent"].shape

    def test_availability_is_percent(self, fig):
        for data in fig.panels.values():
            v = data["availability_percent"]
            assert v.min() >= 0.0 and v.max() <= 100.0
            assert v.max() > 50.0  # the machines are not permanently pegged

    def test_renders(self, fig):
        text = fig.render(width=40, height=8)
        assert "thing1" in text and "*" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure2(seed=SEED, duration=HOURS4)

    def test_acf_starts_at_one(self, fig):
        for data in fig.panels.values():
            assert data["autocorrelation"][0] == 1.0
            assert data["lag"].size == 361

    def test_slow_decay_vs_white_noise(self, fig):
        # Long-range dependence: the mean ACF over lags 1..60 (10 minutes)
        # sits far above the white-noise confidence band.
        for host, data in fig.panels.items():
            rho = data["autocorrelation"]
            band = acf_confidence_band(1200)
            assert rho[1:61].mean() > 3 * band, host


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig(self):
        # Shorter than the paper's week to keep tests quick; the benches
        # run the full seven days.
        return figure3(seed=SEED, duration=12 * 3600.0)

    def test_pox_panels(self, fig):
        for data in fig.panels.values():
            assert data["log10_d"].shape == data["log10_rs"].shape
            assert data["fit_x"].size == data["fit_y"].size

    def test_hurst_notes_in_range(self, fig):
        for key, value in fig.notes.items():
            assert key.endswith("_hurst")
            assert 0.5 < value < 1.0, (key, value)


class TestFigure4:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure4(seed=SEED, duration=SHORT_MEDIUM.duration)

    def test_aggregated_length(self, fig):
        raw = figure1(seed=SEED, duration=HOURS4)
        for host in fig.panels:
            assert fig.panels[host]["time_hours"].size < raw.panels[host]["time_hours"].size

    def test_availability_percent_range(self, fig):
        for data in fig.panels.values():
            v = data["availability_percent"]
            assert v.min() >= 0.0 and v.max() <= 100.0
