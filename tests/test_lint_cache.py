"""Content-addressed lint cache and the unused-suppression check."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import lint_paths
from repro.lint.cache import LintCache, content_digest, file_key, run_key

DIRTY = "import time\n\n\ndef stamp():\n    return time.time()\n"
CLEAN = "def stamp(now):\n    return now\n"


def make_pkg(root: Path, source: str = DIRTY) -> Path:
    pkg = root / "repro"
    (pkg / "sim").mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "sim" / "__init__.py").write_text("")
    (pkg / "sim" / "engine.py").write_text(source)
    return pkg


# ------------------------------------------------------------------- keys


def test_keys_change_with_content_selection_and_path():
    digest = content_digest(DIRTY)
    assert digest != content_digest(CLEAN)
    base = run_key([("a.py", digest)], None, None)
    assert base != run_key([("a.py", content_digest(CLEAN))], None, None)
    assert base != run_key([("a.py", digest)], ["DET001"], None)
    assert base != run_key([("b.py", digest)], None, None)
    assert file_key("a.py", digest, ["DET001"]) != file_key(
        "a.py", digest, ["DET001", "UNIT001"]
    )


# ------------------------------------------------------------- warm runs


def test_warm_run_returns_identical_result_from_cache(tmp_path):
    pkg = make_pkg(tmp_path)
    cache_dir = tmp_path / "cache"
    cold = lint_paths([pkg], cache_dir=cache_dir)
    warm = lint_paths([pkg], cache_dir=cache_dir)
    assert not cold.from_cache and warm.from_cache
    assert warm.findings == cold.findings
    assert warm.suppressed == cold.suppressed
    assert warm.files_checked == cold.files_checked
    assert warm.rules_run == cold.rules_run


def test_editing_a_file_invalidates_the_run_key(tmp_path):
    pkg = make_pkg(tmp_path)
    cache_dir = tmp_path / "cache"
    dirty = lint_paths([pkg], cache_dir=cache_dir)
    assert not dirty.ok
    (pkg / "sim" / "engine.py").write_text(CLEAN)
    fixed = lint_paths([pkg], cache_dir=cache_dir)
    assert not fixed.from_cache
    assert fixed.ok
    # And the fixed tree warms up independently of the dirty entry.
    assert lint_paths([pkg], cache_dir=cache_dir).from_cache


def test_rule_selection_is_part_of_the_key(tmp_path):
    pkg = make_pkg(tmp_path)
    cache_dir = tmp_path / "cache"
    lint_paths([pkg], cache_dir=cache_dir)
    narrowed = lint_paths([pkg], select=["MUT001"], cache_dir=cache_dir)
    assert not narrowed.from_cache
    assert narrowed.ok  # DET001 finding must not leak from the full run


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    pkg = make_pkg(tmp_path)
    cache_dir = tmp_path / "cache"
    lint_paths([pkg], cache_dir=cache_dir)
    for entry in cache_dir.rglob("*.json"):
        entry.write_text("{not json")
    result = lint_paths([pkg], cache_dir=cache_dir)
    assert not result.from_cache
    assert [f.rule_id for f in result.findings] == ["DET001"]


def test_cache_disabled_by_default(tmp_path):
    pkg = make_pkg(tmp_path)
    lint_paths([pkg])
    assert not (tmp_path / "cache").exists()


def test_cli_cache_dir_flag(tmp_path, capsys):
    pkg = make_pkg(tmp_path, CLEAN)
    cache_dir = tmp_path / "cache"
    assert main(["lint", str(pkg), "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()
    assert any(cache_dir.rglob("*.json"))
    assert main(["lint", str(pkg), "--cache-dir", str(cache_dir)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cache_store_and_load_round_trip(tmp_path):
    cache = LintCache(tmp_path / "c")
    cache.store("ab" + "0" * 62, {"findings": []})
    assert cache.load("ab" + "0" * 62) == {"findings": []}
    assert cache.load("cd" + "0" * 62) is None
    assert cache.hits == 1 and cache.misses == 1


# ------------------------------------------------- unused suppressions


def test_unused_suppression_reported_as_lint001(tmp_path):
    pkg = make_pkg(
        tmp_path,
        "def stamp(now):\n"
        "    return now  # lint: ignore[DET001] -- nothing fires here\n",
    )
    result = lint_paths([pkg])
    (finding,) = result.findings
    assert finding.rule_id == "LINT001"
    assert finding.line == 2
    assert "silences nothing" in finding.message


def test_used_suppression_not_reported(tmp_path):
    pkg = make_pkg(
        tmp_path,
        DIRTY.replace(
            "time.time()",
            "time.time()  # lint: ignore[DET001] -- fixture wants wall clock",
        ),
    )
    result = lint_paths([pkg])
    assert result.ok
    assert [f.rule_id for f in result.suppressed] == ["DET001"]


def test_unused_check_skipped_when_registry_is_narrowed(tmp_path):
    pkg = make_pkg(
        tmp_path,
        "def stamp(now):\n"
        "    return now  # lint: ignore[DET001] -- nothing fires here\n",
    )
    assert lint_paths([pkg], select=["DET001"]).ok
    assert lint_paths([pkg], ignore=["MUT001"]).ok


def test_docstring_suppression_examples_are_inert(tmp_path):
    # The pattern inside a docstring must neither suppress findings on
    # its line nor be flagged as an unused suppression.
    pkg = make_pkg(
        tmp_path,
        '"""Example: time.time()  # lint: ignore[DET001] -- docs only."""\n'
        "import time\n\n\n"
        "def stamp():\n"
        "    return time.time()\n",
    )
    result = lint_paths([pkg])
    assert [f.rule_id for f in result.findings] == ["DET001"]
    assert result.suppressed == []


def test_lint001_survives_the_warm_cache(tmp_path):
    pkg = make_pkg(
        tmp_path,
        "def stamp(now):\n"
        "    return now  # lint: ignore[DET001] -- nothing fires here\n",
    )
    cache_dir = tmp_path / "cache"
    cold = lint_paths([pkg], cache_dir=cache_dir)
    warm = lint_paths([pkg], cache_dir=cache_dir)
    assert warm.from_cache
    assert [f.rule_id for f in cold.findings] == ["LINT001"]
    assert warm.findings == cold.findings


def test_json_report_includes_lint001(tmp_path, capsys):
    pkg = make_pkg(
        tmp_path,
        "def stamp(now):\n"
        "    return now  # lint: ignore -- nothing fires here\n",
    )
    assert main(["lint", str(pkg), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "LINT001"
