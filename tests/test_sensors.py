"""Tests for repro.sensors (load average, vmstat, probe, hybrid)."""

import pytest

from repro.sensors.base import clamp_fraction
from repro.sensors.hybrid import HybridSensor
from repro.sensors.loadavg import LoadAverageSensor
from repro.sensors.probe import ProbeRunner
from repro.sensors.testprocess import TestProcessRunner
from repro.sensors.vmstat import VmstatSensor
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.process import Process


class TestClamp:
    def test_clamps(self):
        assert clamp_fraction(-0.5) == 0.0
        assert clamp_fraction(1.5) == 1.0
        assert clamp_fraction(0.3) == 0.3


class TestLoadAverageSensor:
    def test_idle_machine_reads_one(self):
        k = Kernel()
        k.run_until(10.0)
        sensor = LoadAverageSensor()
        assert sensor.read(k).availability == pytest.approx(1.0, abs=0.01)

    def test_one_hog_reads_half(self):
        k = Kernel()
        k.spawn(Process("hog"))
        k.run_until(400.0)
        sensor = LoadAverageSensor()
        assert sensor.read(k).availability == pytest.approx(0.5, abs=0.01)

    def test_formula_is_one_over_load_plus_one(self):
        k = Kernel()
        for i in range(3):
            k.spawn(Process(f"hog{i}"))
        k.run_until(600.0)
        sensor = LoadAverageSensor()
        expected = 1.0 / (k.load_average + 1.0)
        assert sensor.read(k).availability == pytest.approx(expected)

    def test_ncpu_aware_variant(self):
        k = Kernel(KernelConfig(ncpu=4))
        k.spawn(Process("hog"))
        k.run_until(400.0)
        aware = LoadAverageSensor(ncpu_aware=True)
        # load ~1 on 4 CPUs: a newcomer still gets a full CPU.
        assert aware.read(k).availability == pytest.approx(1.0)

    def test_last_reading(self):
        k = Kernel()
        sensor = LoadAverageSensor()
        with pytest.raises(ValueError):
            sensor.last_reading
        reading = sensor.read(k)
        assert sensor.last_reading == reading


class TestVmstatSensor:
    def test_idle_machine_reads_one(self):
        k = Kernel()
        sensor = VmstatSensor()
        sensor.prime(k)
        k.run_until(10.0)
        assert sensor.read(k).availability == pytest.approx(1.0, abs=0.02)

    def test_one_hog_reads_near_half(self):
        k = Kernel()
        sensor = VmstatSensor()
        k.spawn(Process("hog", sys_fraction=0.0))
        k.run_until(60.0)
        sensor.prime(k)
        k.run_until(120.0)
        # idle = 0, user = 1, rq -> 1: avail = (1 + 1*0)/2 = 0.5.
        assert sensor.read(k).availability == pytest.approx(0.5, abs=0.05)

    def test_interval_fractions_tracked(self):
        k = Kernel()
        sensor = VmstatSensor()
        sensor.prime(k)
        k.spawn(Process("hog", sys_fraction=0.3))
        k.run_until(100.0)
        sensor.read(k)
        assert sensor.last_sys == pytest.approx(0.3, abs=0.02)
        assert sensor.last_user == pytest.approx(0.7, abs=0.02)
        assert sensor.last_idle == pytest.approx(0.0, abs=0.02)

    def test_gateway_system_time_not_credited(self):
        # All-system load (w = user = 0): the sys share contributes
        # nothing, so availability equals idle + 0.
        k = Kernel()
        sensor = VmstatSensor()
        sensor.prime(k)
        k.spawn(Process("gateway", sys_fraction=1.0))
        k.run_until(100.0)
        avail = sensor.read(k).availability
        assert avail == pytest.approx(0.0, abs=0.05)

    def test_double_read_same_instant_reuses_fractions(self):
        k = Kernel()
        sensor = VmstatSensor()
        sensor.prime(k)
        k.run_until(10.0)
        first = sensor.read(k).availability
        second = sensor.read(k).availability  # zero-length interval
        assert second == pytest.approx(first, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            VmstatSensor(smoothing=0.0)


class TestProbe:
    def test_probe_measures_idle_machine(self):
        k = Kernel()
        runner = ProbeRunner(duration=1.5)
        results = []
        runner.launch(k, results.append)
        k.run_until(5.0)
        assert len(results) == 1
        assert results[0].availability == pytest.approx(1.0, abs=0.01)
        assert results[0].end_time - results[0].start_time == pytest.approx(1.5, abs=0.11)

    def test_probe_shares_against_equal_process(self):
        k = Kernel()
        k.spawn(Process("fresh"))  # same age as probe
        runner = ProbeRunner()
        results = []
        runner.launch(k, results.append)
        k.run_until(5.0)
        assert results[0].availability == pytest.approx(0.5, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeRunner(duration=0.0)


class TestTestProcess:
    def test_observes_share(self):
        k = Kernel()
        k.spawn(Process("hog"))
        k.run_until(600.0)
        runner = TestProcessRunner(duration=10.0)
        runs = []
        runner.launch(k, runs.append)
        k.run_until(620.0)
        assert len(runs) == 1
        assert 0.4 < runs[0].observed < 0.75

    def test_validation(self):
        with pytest.raises(ValueError):
            TestProcessRunner(duration=-1.0)


class TestHybridSensor:
    def _make(self, kernel):
        la = LoadAverageSensor()
        vm = VmstatSensor()
        vm.prime(kernel)
        return la, vm, HybridSensor(la, vm, ProbeRunner(duration=1.5))

    def test_defaults_to_loadavg_before_first_probe(self):
        k = Kernel()
        la, vm, hybrid = self._make(k)
        k.run_until(10.0)
        la.read(k)
        vm.read(k)
        assert hybrid.trusted_method == "load_average"
        assert hybrid.bias == 0.0
        assert hybrid.read(k).availability == pytest.approx(
            la.last_reading.availability
        )

    def test_probe_corrects_nice_blindness(self):
        # The conundrum mechanism: soaker inflates cheap methods; probe
        # experiences ~1.0; hybrid reads near 1.0 afterwards.
        k = Kernel()
        la, vm, hybrid = self._make(k)
        k.spawn(Process("soak", nice=19))
        k.run_until(300.0)
        la.read(k)
        vm.read(k)
        hybrid.run_probe(k)
        k.run_until(305.0)
        la.read(k)
        vm.read(k)
        value = hybrid.read(k).availability
        assert value > 0.9
        assert len(hybrid.arbitrations) == 1
        assert hybrid.bias > 0.3

    def test_probe_misled_by_aged_hog(self):
        # The kongo mechanism: probe preempts the hog, bias pushes the
        # hybrid far above what a 10 s process would see (~0.55).
        k = Kernel()
        la, vm, hybrid = self._make(k)
        k.spawn(Process("hog", nice=0))
        k.run_until(1800.0)
        la.read(k)
        vm.read(k)
        hybrid.run_probe(k)
        k.run_until(1805.0)
        la.read(k)
        vm.read(k)
        value = hybrid.read(k).availability
        assert value > 0.7  # overestimate vs the ~0.55 truth

    def test_readings_clamped(self):
        k = Kernel()
        la, vm, hybrid = self._make(k)
        k.run_until(10.0)
        la.read(k)
        vm.read(k)
        hybrid._bias = 0.9  # force overshoot
        assert hybrid.read(k).availability <= 1.0
