"""Tests for repro.core.extra_forecasters (battery extensions)."""

import numpy as np
import pytest

from repro.core.extra_forecasters import (
    AR1Forecaster,
    MedianOfMeans,
    TimeOfDayForecaster,
    TrendForecaster,
    extended_battery,
)
from repro.core.forecasters import default_battery
from repro.core.mixture import AdaptiveForecaster, forecast_series


class TestAR1:
    def test_learns_ar1_process(self):
        phi, c = 0.8, 0.1
        rng = np.random.default_rng(0)
        f = AR1Forecaster(discount=1.0)
        x = 0.5
        for _ in range(3000):
            f.update(x)
            x = c + phi * x + rng.normal(0, 0.02)
        fitted_c, fitted_phi = f._coefficients()
        assert fitted_phi == pytest.approx(phi, abs=0.1)
        assert fitted_c == pytest.approx(c, abs=0.06)

    def test_degenerate_falls_back_to_last_value(self):
        f = AR1Forecaster()
        f.update(0.4)
        assert f.forecast() == pytest.approx(0.4)
        f.update(0.4)  # constant input: denominator ~ 0
        assert f.forecast() == pytest.approx(0.4)

    def test_forecast_before_update_rejected(self):
        with pytest.raises(ValueError):
            AR1Forecaster().forecast()

    def test_reset(self):
        f = AR1Forecaster()
        f.update(0.5)
        f.reset()
        with pytest.raises(ValueError):
            f.forecast()

    def test_validation(self):
        with pytest.raises(ValueError):
            AR1Forecaster(discount=0.0)


class TestTrend:
    def test_tracks_linear_ramp(self):
        f = TrendForecaster(0.5, 0.3)
        for i in range(60):
            f.update(0.2 + 0.01 * i)
        # Forecast should anticipate the ramp, i.e. exceed the last value.
        assert f.forecast() > 0.2 + 0.01 * 59

    def test_flat_series_no_spurious_trend(self):
        f = TrendForecaster()
        for _ in range(50):
            f.update(0.6)
        assert f.forecast() == pytest.approx(0.6, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrendForecaster(level_gain=0.0)
        with pytest.raises(ValueError):
            TrendForecaster(trend_gain=1.5)


class TestMedianOfMeans:
    def test_resists_outliers(self):
        f = MedianOfMeans(group_size=3, groups=3)
        for v in (0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 5.0):
            f.update(v)  # one wild outlier in the last group
        assert f.forecast() == pytest.approx(0.5)

    def test_single_group_is_mean(self):
        f = MedianOfMeans(group_size=4, groups=1)
        for v in (0.2, 0.4, 0.6, 0.8):
            f.update(v)
        assert f.forecast() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            MedianOfMeans(group_size=0)


class TestTimeOfDay:
    def test_learns_diurnal_pattern(self):
        # Two-bin "day": values alternate between day-half and night-half.
        f = TimeOfDayForecaster(measure_period=1.0, day=2.0, bins=2)
        for _ in range(50):
            f.update(0.9)  # bin 0
            f.update(0.1)  # bin 1
        # The next update lands in bin 0: forecast its mean.
        assert f.forecast() == pytest.approx(0.9)
        f.update(0.9)
        assert f.forecast() == pytest.approx(0.1)

    def test_unseen_bin_falls_back_to_global_mean(self):
        f = TimeOfDayForecaster(measure_period=1.0, day=10.0, bins=10)
        f.update(0.4)  # bin 0 only
        assert f.forecast() == pytest.approx(0.4)  # bin 1 unseen

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeOfDayForecaster(measure_period=0.0)
        with pytest.raises(ValueError):
            TimeOfDayForecaster(bins=0)


class TestExtendedBattery:
    def test_fresh_and_uniquely_named(self):
        battery = extended_battery()
        names = [f.name for f in battery]
        assert len(set(names)) == len(names)
        combined = default_battery() + battery
        assert len({f.name for f in combined}) == len(combined)

    def test_combined_mixture_runs(self):
        rng = np.random.default_rng(1)
        values = np.clip(0.6 + 0.1 * rng.standard_normal(300), 0, 1)
        mixture = AdaptiveForecaster(default_battery() + extended_battery())
        out = forecast_series(values, mixture)
        assert np.all(np.isfinite(out[1:]))

    def test_forecast_with_error(self):
        mixture = AdaptiveForecaster()
        mixture.update(0.5)
        mixture.update(0.6)
        forecast, error = mixture.forecast_with_error()
        assert 0.0 <= forecast <= 1.0
        assert error >= 0.0
