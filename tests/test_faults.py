"""Unit tests for repro.faults: plans, compiled injectors, retry policy."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.faults import (
    CircuitBreaker,
    CircuitOpenError,
    FaultPlan,
    FaultSpec,
    RetryError,
    RetryPolicy,
    named_plan,
    named_plans,
    seed_entropy,
)
from repro.nws.memory import MemoryStore  # lint: ignore[API001] -- unit-tests the data plane itself
from repro.obs import MetricsRegistry, installed


class TestSeedEntropy:
    def test_int_and_sequence_forms(self):
        assert seed_entropy(7) == (7,)
        assert seed_entropy([7, 3]) == (7, 3)
        assert seed_entropy(np.random.SeedSequence(7)) == (7,)
        assert seed_entropy(np.random.SeedSequence([7, 3])) == (7, 3)

    def test_int_matches_list_seeding(self):
        # The system wraps seeds as SeedSequence(list(entropy)); an int
        # seed must produce the same stream it always did.
        a = np.random.SeedSequence(7).generate_state(4)
        b = np.random.SeedSequence(list(seed_entropy(7))).generate_state(4)
        np.testing.assert_array_equal(a, b)


class TestFaultPlan:
    def test_builders_return_new_plans(self):
        base = FaultPlan("p")
        grown = base.sensor_dropout(0.1)
        assert base.specs == ()
        assert len(grown.specs) == 1
        assert grown.name == "p"

    def test_host_scoping(self):
        plan = FaultPlan("p").crash(start=10.0, duration=5.0, host="thing1")
        assert plan.for_host("thing1") == plan.specs
        assert plan.for_host("kongo") == ()

    def test_spec_window_semantics(self):
        spec = FaultSpec("sensor_dropout", rate=0.5, start=10.0, stop=20.0)
        assert not spec.active(9.9)
        assert spec.active(10.0)
        assert spec.active(19.9)
        assert not spec.active(20.0)

    def test_validation(self):
        plan = FaultPlan("p")
        with pytest.raises(ValueError, match="rate"):
            plan.sensor_dropout(1.5)
        with pytest.raises(ValueError, match="max_delay"):
            plan.publish_delay(0.1, max_delay=0.0)
        with pytest.raises(ValueError, match="duration"):
            plan.crash(start=0.0, duration=0.0)
        with pytest.raises(ValueError, match="keep_fraction"):
            plan.journal_truncate(at=0.0, keep_fraction=1.0)
        with pytest.raises(ValueError, match="lines"):
            plan.journal_corrupt(at=0.0, lines=0)

    def test_describe_lists_every_clause(self):
        text = named_plan("grid-storm").describe()
        for kind in (
            "sensor_dropout",
            "publish_loss",
            "publish_delay",
            "publish_duplicate",
            "clock_skew",
            "crash",
        ):
            assert kind in text

    def test_named_plans_registry(self):
        assert set(named_plans()) == {
            "none",
            "dropout10",
            "dropout10-crash",
            "grid-storm",
        }
        with pytest.raises(KeyError, match="dropout10"):
            named_plan("bogus")


def compiled(plan, *, seed=7, host_index=0, host="thing1"):
    return plan.compile(seed=seed, host_index=host_index, host=host)


class TestRouting:
    def test_clean_passthrough(self):
        faults = compiled(FaultPlan("none"))
        assert faults.route("s", 10.0, 0.5) == [(10.0, 0.5)]
        assert faults.tallies == {}

    def test_dropout_publishes_nan_gap(self):
        faults = compiled(FaultPlan("p").sensor_dropout(1.0))
        [(t, v)] = faults.route("s", 10.0, 0.5)
        assert t == 10.0 and math.isnan(v)
        assert faults.counts("injected") == {"sensor_dropout": 1}

    def test_loss_drops_the_publish(self):
        faults = compiled(FaultPlan("p").publish_loss(1.0))
        assert faults.route("s", 10.0, 0.5) == []
        assert faults.counts("injected") == {"publish_loss": 1}

    def test_duplicate_publishes_twice(self):
        faults = compiled(FaultPlan("p").publish_duplicate(1.0))
        assert faults.route("s", 10.0, 0.5) == [(10.0, 0.5), (10.0, 0.5)]

    def test_skew_offsets_timestamp(self):
        faults = compiled(FaultPlan("p").clock_skew(2.5, start=0.0, stop=20.0))
        assert faults.route("s", 10.0, 0.5) == [(12.5, 0.5)]
        # Outside the window the offset vanishes.
        assert faults.route("s", 30.0, 0.5) == [(30.0, 0.5)]

    def test_delay_buffers_and_flushes_with_original_stamp(self):
        faults = compiled(FaultPlan("p").publish_delay(1.0, max_delay=45.0))
        assert faults.route("s", 10.0, 0.5) == []
        assert faults.flush(10.0) == []  # not due yet
        flushed = faults.flush(60.0)
        assert flushed == [("s", 10.0, 0.5)]
        assert faults.flush(60.0) == []  # delivered exactly once

    def test_crash_kills_buffered_deliveries(self):
        plan = (
            FaultPlan("p")
            .publish_delay(1.0, max_delay=45.0)
            .crash(start=15.0, duration=10.0)
        )
        faults = compiled(plan)
        faults.route("s", 10.0, 0.5)
        assert faults.flush(60.0) == []
        assert faults.counts("injected")["crash_lost"] == 1

    def test_crash_window_predicate(self):
        faults = compiled(FaultPlan("p").crash(start=10.0, duration=5.0))
        assert not faults.crashed(9.9)
        assert faults.crashed(10.0)
        assert faults.crashed(14.9)
        assert not faults.crashed(15.0)

    def test_inactive_window_never_fires(self):
        faults = compiled(FaultPlan("p").sensor_dropout(1.0, start=100.0))
        assert faults.route("s", 10.0, 0.5) == [(10.0, 0.5)]


class TestDeterminism:
    def _decisions(self, *, seed, host_index):
        faults = compiled(
            FaultPlan("p").sensor_dropout(0.3).publish_loss(0.3),
            seed=seed,
            host_index=host_index,
        )
        return [faults.route("s", float(t), 0.5) for t in range(200)]

    def test_same_seed_same_stream(self):
        a = self._decisions(seed=7, host_index=0)
        b = self._decisions(seed=7, host_index=0)
        assert repr(a) == repr(b)

    def test_host_index_separates_streams(self):
        a = self._decisions(seed=7, host_index=0)
        b = self._decisions(seed=7, host_index=1)
        assert repr(a) != repr(b)

    def test_seed_separates_streams(self):
        a = self._decisions(seed=7, host_index=0)
        b = self._decisions(seed=8, host_index=0)
        assert repr(a) != repr(b)


class TestJournalFaults:
    def _store(self, tmp_path, n=20):
        store = MemoryStore(capacity=100, directory=tmp_path)
        for i in range(n):
            store.publish("s", float(i), 0.5)
        return store

    def test_corrupt_then_recover(self, tmp_path):
        store = self._store(tmp_path)
        faults = compiled(FaultPlan("p").journal_corrupt(at=100.0, lines=3))
        faults.tick(200.0, store, ["s"])
        assert faults.counts("injected") == {"journal_corrupt": 1}
        assert faults.counts("absorbed") == {"journal_recovered": 1}
        # Recovery replayed the valid lines; garbage was skipped.
        times, _ = store.fetch("s")
        assert times.size == 20

    def test_truncate_then_recover_loses_tail(self, tmp_path):
        store = self._store(tmp_path)
        faults = compiled(FaultPlan("p").journal_truncate(at=100.0, keep_fraction=0.5))
        faults.tick(200.0, store, ["s"])
        assert faults.counts("absorbed") == {"journal_recovered": 1}
        times, _ = store.fetch("s")
        assert 0 < times.size < 20

    def test_event_is_one_shot(self, tmp_path):
        store = self._store(tmp_path)
        faults = compiled(FaultPlan("p").journal_corrupt(at=100.0))
        faults.tick(200.0, store, ["s"])
        faults.tick(300.0, store, ["s"])
        assert faults.counts("injected") == {"journal_corrupt": 1}

    def test_not_due_yet(self, tmp_path):
        store = self._store(tmp_path)
        faults = compiled(FaultPlan("p").journal_corrupt(at=100.0))
        faults.tick(50.0, store, ["s"])
        assert faults.tallies == {}

    def test_unpersisted_memory_is_a_failed_fault(self):
        faults = compiled(FaultPlan("p").journal_truncate(at=0.0))
        faults.tick(10.0, MemoryStore(), ["s"])
        assert faults.counts("failed") == {"journal_unpersisted": 1}


class TestTallyMetrics:
    def test_tallies_mirror_registry_counters(self):
        with installed(MetricsRegistry()) as registry:
            faults = compiled(FaultPlan("p").sensor_dropout(1.0))
            faults.route("s", 0.0, 0.5)
            faults.route("s", 10.0, 0.5)
        assert faults.counts("injected") == {"sensor_dropout": 2}
        snap = registry.snapshot()
        sample = snap["repro_faults_injected_total"]["samples"][0]
        assert sample["labels"] == {"host": "thing1", "kind": "sensor_dropout"}
        assert sample["value"] == 2.0


class TestRetryPolicy:
    def test_success_needs_no_retry(self):
        policy = RetryPolicy(retries=2)
        assert policy.call(lambda: 42) == 42
        assert policy.attempts == 1
        assert policy.retries_used == 0

    def test_retries_until_success(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(retries=2, base_delay=0.0, jitter=0.0)
        assert policy.call(flaky) == "ok"
        assert policy.retries_used == 2

    def test_exhaustion_raises_chained_retryerror(self):
        def always_fail():
            raise OSError("dead")

        policy = RetryPolicy(retries=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryError, match="thing failed after 3 attempt") as info:
            policy.call(always_fail, describe="thing")
        assert isinstance(info.value.__cause__, OSError)

    def test_attempts_used_shrinks_budget(self):
        calls = {"n": 0}

        def always_fail():
            calls["n"] += 1
            raise OSError("dead")

        policy = RetryPolicy(retries=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryError):
            policy.call(always_fail, attempts_used=1)
        assert calls["n"] == 2  # in-call budget: 3 total - 1 already used
        assert policy.retries_used == 2
        with pytest.raises(ValueError, match="exhausts"):
            policy.call(always_fail, attempts_used=3)

    def test_on_retry_reports_global_attempt_numbers(self):
        seen = []

        def always_fail():
            raise OSError("dead")

        policy = RetryPolicy(retries=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(RetryError):
            policy.call(
                always_fail,
                on_retry=lambda n, exc, delay: seen.append(n),
                attempts_used=1,
            )
        assert seen == [1, 2]

    def test_backoff_shape_and_cap(self):
        policy = RetryPolicy(base_delay=1.0, factor=2.0, max_delay=5.0, jitter=0.0)
        assert [policy.next_delay(k) for k in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_seeded(self):
        a = RetryPolicy(jitter=0.5, seed=3)
        b = RetryPolicy(jitter=0.5, seed=3)
        assert [a.next_delay(k) for k in range(5)] == [
            b.next_delay(k) for k in range(5)
        ]

    def test_injected_sleep_receives_delays(self):
        waits = []
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(
            retries=2, base_delay=1.0, factor=2.0, jitter=0.0, sleep=waits.append
        )
        assert policy.call(flaky) == "ok"
        assert waits == [1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


def breaker(**kwargs):
    """A breaker on an injectable clock; returns (breaker, clock dict)."""
    clock = {"t": 0.0}
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("cooldown", 10.0)
    kwargs.setdefault("jitter", 0.0)
    return CircuitBreaker(clock=lambda: clock["t"], **kwargs), clock


class TestCircuitBreaker:
    def test_starts_closed_and_stays_closed_below_threshold(self):
        cb, _ = breaker()
        for _ in range(2):
            cb.before_call()
            cb.record_failure()
        assert cb.state == "closed"

    def test_threshold_consecutive_failures_open_it(self):
        cb, _ = breaker()
        for _ in range(3):
            cb.before_call()
            cb.record_failure()
        assert cb.state == "open"
        with pytest.raises(CircuitOpenError) as info:
            cb.before_call()
        assert info.value.retry_in == pytest.approx(10.0)

    def test_success_resets_the_consecutive_count(self):
        cb, _ = breaker()
        for _ in range(2):
            cb.before_call()
            cb.record_failure()
        cb.before_call()
        cb.record_success()
        cb.before_call()
        cb.record_failure()
        assert cb.state == "closed"

    def test_cooldown_elapses_into_half_open_and_success_closes(self):
        cb, clock = breaker()
        for _ in range(3):
            cb.before_call()
            cb.record_failure()
        clock["t"] = 10.0
        cb.before_call()  # admitted probe
        assert cb.state == "half_open"
        cb.record_success()
        assert cb.state == "closed"
        assert cb.transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_half_open_probe_budget_fast_fails_the_rest(self):
        cb, clock = breaker(probe_budget=1)
        for _ in range(3):
            cb.before_call()
            cb.record_failure()
        clock["t"] = 10.0
        cb.before_call()  # takes the only probe slot
        with pytest.raises(CircuitOpenError, match="probe budget"):
            cb.before_call()

    def test_failed_probe_reopens_with_a_fresh_cooldown(self):
        cb, clock = breaker()
        for _ in range(3):
            cb.before_call()
            cb.record_failure()
        clock["t"] = 10.0
        cb.before_call()
        cb.record_failure()
        assert cb.state == "open"
        with pytest.raises(CircuitOpenError):
            cb.before_call()  # cooldown restarted at t=10
        clock["t"] = 20.0
        cb.before_call()
        assert cb.state == "half_open"

    def test_cooldown_jitter_is_seeded(self):
        a, clock_a = breaker(jitter=0.5, seed=3)
        b, clock_b = breaker(jitter=0.5, seed=3)
        for cb in (a, b):
            for _ in range(3):
                cb.before_call()
                cb.record_failure()
        with pytest.raises(CircuitOpenError) as info_a:
            a.before_call()
        with pytest.raises(CircuitOpenError) as info_b:
            b.before_call()
        assert info_a.value.retry_in == info_b.value.retry_in
        assert 10.0 <= info_a.value.retry_in <= 15.0

    def test_call_convenience_wraps_the_state_machine(self):
        cb, _ = breaker(failure_threshold=1)
        with pytest.raises(OSError):
            cb.call(_raise_oserror)
        assert cb.state == "open"
        with pytest.raises(CircuitOpenError):
            cb.call(lambda: "never runs")

    def test_transitions_and_fastfails_are_tallied(self):
        with installed(MetricsRegistry()) as registry:
            cb, clock = breaker(failure_threshold=1)
            cb.before_call()
            cb.record_failure()
            with pytest.raises(CircuitOpenError):
                cb.before_call()
            clock["t"] = 10.0
            cb.before_call()
            cb.record_success()
        snap = registry.snapshot()
        fastfails = snap["repro_client_breaker_fastfails_total"]
        assert fastfails["samples"][0]["value"] == 1
        transitions = {
            tuple(sorted(s["labels"].items()))[0][1]: s["value"]
            for s in snap["repro_client_breaker_transitions_total"]["samples"]
        }
        assert transitions == {
            "closed->open": 1.0,
            "open->half_open": 1.0,
            "half_open->closed": 1.0,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_budget=0)
        with pytest.raises(ValueError):
            CircuitBreaker(jitter=-0.5)


def _raise_oserror():
    raise OSError("dead")
