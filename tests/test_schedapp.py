"""Tests for repro.schedapp (grid scheduling on forecasts)."""

import numpy as np
import pytest

from repro.schedapp.grid import SimGrid
from repro.schedapp.mappers import EqualSplitMapper, PredictiveMapper, RandomMapper
from repro.schedapp.tasks import GridTask, TaskResult
from repro.schedapp.workqueue import self_schedule


def make_tasks(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return [GridTask(i, float(w)) for i, w in enumerate(rng.uniform(10, 40, n))]


class TestGridTask:
    def test_validation(self):
        with pytest.raises(ValueError):
            GridTask(0, 0.0)

    def test_result_metrics(self):
        r = TaskResult(GridTask(0, 10.0), "h", 0.0, 20.0)
        assert r.elapsed == 20.0
        assert r.achieved_availability == pytest.approx(0.5)


class TestMappers:
    FORECASTS = {"a": 0.9, "b": 0.5, "c": 0.1}

    def _assert_complete(self, assignment, tasks):
        placed = [t.task_id for ts in assignment.values() for t in ts]
        assert sorted(placed) == [t.task_id for t in tasks]

    def test_random_places_all(self):
        tasks = make_tasks(20)
        out = RandomMapper().assign(tasks, self.FORECASTS, rng=np.random.default_rng(1))
        self._assert_complete(out, tasks)

    def test_equal_split_balances_counts(self):
        tasks = make_tasks(9)
        out = EqualSplitMapper().assign(tasks, self.FORECASTS)
        assert [len(v) for v in out.values()] == [3, 3, 3]

    def test_predictive_prefers_fast_hosts(self):
        tasks = make_tasks(12)
        out = PredictiveMapper().assign(tasks, self.FORECASTS)
        self._assert_complete(out, tasks)
        work = {h: sum(t.work for t in ts) for h, ts in out.items()}
        assert work["a"] > work["c"]
        # Work shares roughly proportional to rates (LPT approximates).
        assert work["a"] / work["b"] == pytest.approx(0.9 / 0.5, rel=0.5)

    def test_predictive_balances_finish_times(self):
        tasks = make_tasks(40)
        forecasts = {"a": 0.8, "b": 0.4}
        out = PredictiveMapper().assign(tasks, forecasts)
        finish = {
            h: sum(t.work for t in ts) / forecasts[h] for h, ts in out.items()
        }
        assert abs(finish["a"] - finish["b"]) < 40.0

    def test_predictive_excludes_dead_hosts(self):
        tasks = make_tasks(6)
        out = PredictiveMapper(min_availability=0.2).assign(
            tasks, {"alive": 0.9, "dead": 0.01}
        )
        assert out["dead"] == []

    def test_predictive_falls_back_when_all_dead(self):
        tasks = make_tasks(4)
        out = PredictiveMapper(min_availability=0.5).assign(
            tasks, {"x": 0.1, "y": 0.2}
        )
        assert sum(len(v) for v in out.values()) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomMapper().assign([], self.FORECASTS)
        with pytest.raises(ValueError):
            RandomMapper().assign(make_tasks(1), {})
        with pytest.raises(ValueError):
            PredictiveMapper(min_availability=1.5)


class TestSimGrid:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            SimGrid(["thing1"], method="top")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SimGrid([])

    def test_forecasts_for_each_instance(self):
        grid = SimGrid(["thing1", "thing1"], seed=3)
        grid.advance(1200.0)
        fc = grid.forecasts()
        assert set(fc) == {"thing1#0", "thing1#1"}
        for value in fc.values():
            assert 0.0 <= value <= 1.0

    def test_execute_runs_all_tasks(self):
        grid = SimGrid(["thing1", "gremlin"], seed=4)
        grid.advance(1200.0)
        tasks = make_tasks(6)
        assignment = EqualSplitMapper().assign(tasks, grid.forecasts())
        result = grid.execute(assignment)
        assert len(result.results) == 6
        assert result.makespan > 0.0
        assert max(result.per_host_finish.values()) == pytest.approx(result.makespan)

    def test_execute_unknown_host_rejected(self):
        grid = SimGrid(["thing1"], seed=5)
        with pytest.raises(KeyError):
            grid.execute({"bogus": make_tasks(1)})

    def test_task_on_idle_host_runs_near_full_speed(self):
        grid = SimGrid(["gremlin"], seed=6)
        grid.advance(1200.0)
        result = grid.execute({"gremlin#0": [GridTask(0, 30.0)]})
        r = result.results[0]
        assert r.achieved_availability > 0.6


class TestWorkQueue:
    def test_drains_all_tasks(self):
        grid = SimGrid(["thing1", "kongo"], seed=7)
        grid.advance(1200.0)
        tasks = make_tasks(10)
        run = self_schedule(grid, tasks)
        assert len(run.results) == 10
        assert sum(run.chunks_per_host.values()) == 10

    def test_faster_host_pulls_more(self):
        # kongo's permanent hog halves its rate; thing1 is mostly idle.
        grid = SimGrid(["thing1", "kongo"], seed=8)
        grid.advance(1200.0)
        tasks = [GridTask(i, 15.0) for i in range(12)]
        run = self_schedule(grid, tasks)
        assert run.chunks_per_host["thing1#0"] > run.chunks_per_host["kongo#1"]

    def test_empty_rejected(self):
        grid = SimGrid(["thing1"], seed=9)
        with pytest.raises(ValueError):
            self_schedule(grid, [])
