"""Tests for repro.analysis.dfa (detrended fluctuation analysis)."""

import numpy as np
import pytest

from repro.analysis.dfa import dfa_fluctuations, hurst_dfa
from repro.analysis.fgn import fgn


class TestDfaFluctuations:
    def test_monotone_in_scale_for_fgn(self):
        x = fgn(4096, 0.7, rng=1)
        f = dfa_fluctuations(x, [8, 32, 128])
        assert f[0] < f[1] < f[2]

    def test_positive(self):
        x = fgn(1024, 0.6, rng=2)
        assert np.all(dfa_fluctuations(x, [8, 16]) > 0.0)

    def test_scale_validation(self):
        x = fgn(256, 0.7, rng=3)
        with pytest.raises(ValueError, match="out of range"):
            dfa_fluctuations(x, [2])
        with pytest.raises(ValueError, match="out of range"):
            dfa_fluctuations(x, [200])

    def test_line_is_fully_detrended(self):
        # A pure linear ramp has (almost) zero fluctuation after order-1
        # detrending of its profile within windows -- compare with noise.
        t = np.linspace(0.0, 1.0, 1024)
        ramp_fluct = dfa_fluctuations(t, [16])[0]
        noise_fluct = dfa_fluctuations(
            t + np.random.default_rng(0).normal(0, 1.0, 1024), [16]
        )[0]
        assert ramp_fluct < noise_fluct / 3.0


class TestHurstDfa:
    @pytest.mark.parametrize("true_h", [0.55, 0.7, 0.85])
    def test_recovers_fgn_hurst(self, true_h):
        x = fgn(1 << 15, true_h, rng=int(true_h * 1000))
        est = hurst_dfa(x)
        assert est.value == pytest.approx(true_h, abs=0.08)
        assert est.method == "dfa"

    def test_white_noise_near_half(self):
        x = fgn(1 << 15, 0.5, rng=9)
        assert hurst_dfa(x).value == pytest.approx(0.5, abs=0.08)

    def test_robust_to_linear_trend(self):
        # Add a strong linear trend: R/S inflates badly, DFA(1) does not.
        from repro.analysis.hurst import hurst_rs

        x = fgn(1 << 14, 0.6, rng=10)
        trend = np.linspace(0.0, 20.0, x.size)
        dfa_est = hurst_dfa(x + trend).value
        rs_est = hurst_rs(x + trend).value
        assert abs(dfa_est - 0.6) < abs(rs_est - 0.6)

    def test_detail_carries_fit_inputs(self):
        x = fgn(2048, 0.7, rng=11)
        est = hurst_dfa(x)
        assert est.detail["scales"].size == est.detail["fluctuations"].size

    def test_needs_enough_scales(self):
        x = fgn(256, 0.7, rng=12)
        with pytest.raises(ValueError, match="three scales"):
            hurst_dfa(x, scales=[8, 16])

    def test_detects_lrd_on_simulated_trace(self, thing1_run):
        # On the plateaued availability traces DFA reads higher than R/S
        # (alpha > 1 flags locally nonstationary, fBm-like structure); the
        # robust claim both estimators agree on is strong long-range
        # dependence, far from the 0.5 of short-memory noise.
        values = thing1_run.values("load_average")
        dfa_h = hurst_dfa(values).value
        assert dfa_h > 0.6
