"""Shared fixtures: short reproducible testbed runs, seeded RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.testbed import TestbedConfig
from repro.runner import default_runner


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


#: A short config shared by experiment-level tests: 4 simulated hours is
#: enough for ~23 ground-truth samples and ~1200 measurements per host,
#: while keeping the whole suite fast.  The default runner memoizes, so
#: every test using this config shares one simulation per host.
SHORT = TestbedConfig(duration=4 * 3600.0, seed=7)

#: Medium-term (Table 6 style) short config.
SHORT_MEDIUM = TestbedConfig(
    duration=6 * 3600.0, seed=7, test_period=3600.0, test_duration=300.0
)


@pytest.fixture(scope="session")
def short_config() -> TestbedConfig:
    return SHORT


@pytest.fixture(scope="session")
def thing1_run():
    return default_runner().run_one("thing1", SHORT)


@pytest.fixture(scope="session")
def thing2_run():
    return default_runner().run_one("thing2", SHORT)


@pytest.fixture(scope="session")
def conundrum_run():
    return default_runner().run_one("conundrum", SHORT)


@pytest.fixture(scope="session")
def kongo_run():
    return default_runner().run_one("kongo", SHORT)
