"""Tests for repro.workload.distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.distributions import (
    BoundedPareto,
    Exponential,
    Fixed,
    LogNormal,
    Pareto,
)


def sample_mean(dist, n=40_000, seed=0):
    rng = np.random.default_rng(seed)
    return float(np.mean([dist.sample(rng) for _ in range(n)]))


class TestFixed:
    def test_constant(self):
        d = Fixed(3.0)
        rng = np.random.default_rng(0)
        assert d.sample(rng) == 3.0
        assert d.mean == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Fixed(0.0)


class TestExponential:
    def test_mean(self):
        d = Exponential(5.0)
        assert sample_mean(d) == pytest.approx(5.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(-1.0)


class TestPareto:
    def test_analytic_mean(self):
        d = Pareto(2.5, 4.0)
        assert d.mean == pytest.approx(2.5 * 4.0 / 1.5)

    def test_sample_mean_matches(self):
        d = Pareto(2.5, 4.0)
        assert sample_mean(d) == pytest.approx(d.mean, rel=0.05)

    def test_infinite_mean_for_alpha_at_most_one(self):
        assert Pareto(1.0, 2.0).mean == np.inf
        assert Pareto(0.5, 2.0).mean == np.inf

    def test_samples_at_least_xm(self):
        d = Pareto(1.6, 7.0)
        rng = np.random.default_rng(1)
        for _ in range(500):
            assert d.sample(rng) >= 7.0

    def test_heavy_tail_in_lrd_regime(self):
        # alpha in (1, 2): sample variance grows without bound -- spot
        # check the tail is much heavier than exponential.
        d = Pareto(1.3, 1.0)
        rng = np.random.default_rng(2)
        samples = np.array([d.sample(rng) for _ in range(30_000)])
        assert samples.max() > 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Pareto(0.0, 1.0)
        with pytest.raises(ValueError):
            Pareto(1.5, 0.0)


class TestBoundedPareto:
    def test_samples_within_bounds(self):
        d = BoundedPareto(1.6, 2.0, 50.0)
        rng = np.random.default_rng(3)
        samples = [d.sample(rng) for _ in range(2000)]
        assert min(samples) >= 2.0
        assert max(samples) <= 50.0

    def test_analytic_mean_matches_sampling(self):
        d = BoundedPareto(1.6, 2.0, 50.0)
        assert sample_mean(d) == pytest.approx(d.mean, rel=0.03)

    def test_alpha_one_mean(self):
        d = BoundedPareto(1.0, 1.0, np.e)
        # mean = ln(hi/lo) / (1/lo - 1/hi) = 1 / (1 - 1/e)
        assert d.mean == pytest.approx(1.0 / (1.0 - 1.0 / np.e))
        assert sample_mean(d) == pytest.approx(d.mean, rel=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedPareto(1.6, 5.0, 5.0)

    @given(
        st.floats(min_value=0.5, max_value=3.0),
        st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_bounded(self, alpha, xm):
        d = BoundedPareto(alpha, xm, xm * 10.0)
        rng = np.random.default_rng(int(alpha * 100 + xm * 10))
        for _ in range(50):
            s = d.sample(rng)
            assert xm <= s <= xm * 10.0


class TestLogNormal:
    def test_arithmetic_mean_parameterization(self):
        d = LogNormal(4.0, sigma=1.0)
        assert sample_mean(d) == pytest.approx(4.0, rel=0.1)

    def test_positive(self):
        d = LogNormal(2.0, 1.5)
        rng = np.random.default_rng(4)
        for _ in range(200):
            assert d.sample(rng) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormal(0.0)
        with pytest.raises(ValueError):
            LogNormal(1.0, sigma=0.0)
