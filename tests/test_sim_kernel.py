"""Tests for repro.sim.kernel (dispatch, accounting, instrumentation)."""

import pytest

from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.process import Process, ProcessState
from repro.sim.scheduler import RoundRobinScheduler


class TestConfig:
    def test_defaults(self):
        c = KernelConfig()
        assert c.quantum == 0.1 and c.tick == 1.0 and c.ncpu == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelConfig(quantum=0.0)
        with pytest.raises(ValueError):
            KernelConfig(quantum=2.0, tick=1.0)
        with pytest.raises(ValueError):
            KernelConfig(loadavg_tau=0.0)
        with pytest.raises(ValueError):
            KernelConfig(ncpu=0)


class TestAccountingConservation:
    def test_time_fully_accounted_idle(self):
        k = Kernel()
        k.run_until(100.0)
        assert k.cum_user + k.cum_sys + k.cum_idle == pytest.approx(100.0)
        assert k.cum_idle == pytest.approx(100.0)

    def test_time_fully_accounted_busy(self):
        k = Kernel()
        k.spawn(Process("hog", sys_fraction=0.2))
        k.run_until(50.0)
        assert k.cum_user + k.cum_sys + k.cum_idle == pytest.approx(50.0)
        assert k.cum_sys == pytest.approx(10.0, rel=0.01)

    def test_time_fully_accounted_contended(self):
        k = Kernel()
        for i in range(3):
            k.spawn(Process(f"p{i}"))
        k.run_until(30.0)
        assert k.cum_user + k.cum_sys + k.cum_idle == pytest.approx(30.0)
        assert k.cum_idle == pytest.approx(0.0, abs=1e-6)

    def test_smp_accounting(self):
        k = Kernel(KernelConfig(ncpu=2))
        k.spawn(Process("one"))
        k.run_until(10.0)
        # one CPU busy, one idle
        assert k.cum_user + k.cum_sys == pytest.approx(10.0, rel=0.01)
        assert k.cum_idle == pytest.approx(10.0, rel=0.01)

    def test_nrun_integral(self):
        k = Kernel()
        k.spawn(Process("a"))
        k.spawn(Process("b"))
        k.run_until(10.0)
        assert k.cum_nrun_time == pytest.approx(20.0, rel=0.01)


class TestDispatch:
    def test_equal_sharing(self):
        k = Kernel()
        a = k.spawn(Process("a", cpu_demand=20.0))
        b = k.spawn(Process("b", cpu_demand=20.0))
        k.run_until(45.0)
        assert a.done and b.done
        assert a.observed_availability == pytest.approx(0.5, abs=0.02)
        assert b.observed_availability == pytest.approx(0.5, abs=0.02)

    def test_single_process_full_speed(self):
        k = Kernel()
        p = k.spawn(Process("p", cpu_demand=5.0))
        k.run_until(10.0)
        assert p.done
        assert p.end_time == pytest.approx(5.0, abs=0.2)

    def test_completion_callback(self):
        k = Kernel()
        finished = []
        k.spawn(Process("p", cpu_demand=2.0, on_done=finished.append))
        k.run_until(5.0)
        assert len(finished) == 1 and finished[0].name == "p"

    def test_smp_runs_two_at_once(self):
        k = Kernel(KernelConfig(ncpu=2))
        a = k.spawn(Process("a", cpu_demand=10.0))
        b = k.spawn(Process("b", cpu_demand=10.0))
        k.run_until(12.0)
        assert a.done and b.done
        assert a.end_time == pytest.approx(10.0, abs=0.3)
        assert b.end_time == pytest.approx(10.0, abs=0.3)

    def test_run_backwards_rejected(self):
        k = Kernel()
        k.run_until(10.0)
        with pytest.raises(ValueError, match="backwards"):
            k.run_until(5.0)

    def test_double_spawn_rejected(self):
        k = Kernel()
        p = k.spawn(Process("p"))
        with pytest.raises(ValueError):
            k.spawn(p)


class TestLoadAverage:
    def test_converges_to_run_queue(self):
        k = Kernel()
        k.spawn(Process("hog"))
        k.run_until(400.0)
        assert k.load_average == pytest.approx(1.0, abs=0.01)

    def test_one_minute_time_constant(self):
        k = Kernel()
        k.spawn(Process("hog"))
        k.run_until(60.0)
        # After one time constant the EWMA reaches 1 - 1/e.
        assert k.load_average == pytest.approx(1.0 - 1.0 / 2.718281828, abs=0.03)

    def test_decays_after_load_leaves(self):
        k = Kernel()
        k.spawn(Process("job", cpu_demand=100.0))
        k.run_until(300.0)
        peak = k.load_average
        k.run_until(600.0)
        assert k.load_average < peak / 10.0


class TestSleepWake:
    def test_sleeping_leaves_run_queue(self):
        k = Kernel()
        p = k.spawn(Process("p"))
        k.run_until(1.0)
        k.sleep(p, 5.0)
        assert k.run_queue_length == 0
        k.run_until(7.0)
        assert p.state is ProcessState.RUNNABLE

    def test_sleeping_process_consumes_no_cpu(self):
        k = Kernel()
        p = k.spawn(Process("p"))
        k.run_until(2.0)
        used_before = p.cpu_time
        k.sleep(p, 10.0)
        k.run_until(11.0)
        assert p.cpu_time == pytest.approx(used_before, abs=0.2)

    def test_sleep_validation(self):
        k = Kernel()
        p = k.spawn(Process("p"))
        with pytest.raises(ValueError):
            k.sleep(p, 0.0)
        k.sleep(p, 1.0)
        with pytest.raises(ValueError):
            k.sleep(p, 1.0)  # already sleeping


class TestKill:
    def test_kill_removes_and_stamps(self):
        k = Kernel()
        p = k.spawn(Process("p"))
        k.run_until(3.0)
        k.kill(p)
        assert p.done and p.end_time == pytest.approx(3.0)
        assert p not in k.processes

    def test_kill_done_is_noop(self):
        k = Kernel()
        p = k.spawn(Process("p", cpu_demand=1.0))
        k.run_until(2.0)
        k.kill(p)  # already completed; must not raise


class TestEvents:
    def test_after_and_at(self):
        k = Kernel()
        fired = []
        k.after(5.0, lambda: fired.append(k.time))
        k.at(10.0, lambda: fired.append(k.time))
        k.run_until(12.0)
        assert len(fired) == 2
        assert fired[0] == pytest.approx(5.0, abs=0.11)
        assert fired[1] == pytest.approx(10.0, abs=0.11)

    def test_event_in_past_fires_promptly(self):
        k = Kernel()
        k.run_until(5.0)
        fired = []
        k.at(1.0, lambda: fired.append(k.time))
        k.run_until(6.0)
        assert fired and fired[0] == pytest.approx(5.0, abs=0.11)

    def test_negative_delay_rejected(self):
        k = Kernel()
        with pytest.raises(ValueError):
            k.after(-1.0, lambda: None)

    def test_on_tick_listener(self):
        k = Kernel()
        ticks = []
        k.on_tick(lambda kern: ticks.append(kern.time))
        k.run_until(5.0)
        assert len(ticks) == 5


class TestSchedulerPluggability:
    def test_round_robin_shares_with_nice(self):
        # Under round-robin, a nice-19 process gets an equal share --
        # the ablation premise.
        k = Kernel(scheduler=RoundRobinScheduler())
        soak = k.spawn(Process("soak", nice=19, cpu_demand=50.0))
        hog = k.spawn(Process("hog", nice=0, cpu_demand=50.0))
        k.run_until(60.0)
        assert soak.cpu_time == pytest.approx(hog.cpu_time, rel=0.05)
