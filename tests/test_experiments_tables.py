"""Tests for repro.experiments.tables: structure plus the paper's
qualitative signatures on a short (4-6 h) run.

The benchmark suite regenerates the full 24-hour tables; here we assert the
*shape* invariants from DESIGN.md hold even on the shorter, cheaper run.
"""

import re

import numpy as np
import pytest

from repro.experiments.tables import table1, table2, table3, table4, table5, table6
from repro.workload.profiles import profile_names

from tests.conftest import SHORT, SHORT_MEDIUM

HOURS4 = SHORT.duration
SEED = SHORT.seed


def cell_percent(table, host, column):
    """Parse the leading float out of a formatted '12.3%'-style cell."""
    text = str(table.cell(host, column))
    match = re.search(r"-?\d+(\.\d+)?", text)
    assert match, text
    return float(match.group())


@pytest.fixture(scope="module")
def t1():
    return table1(seed=SEED, duration=HOURS4)


@pytest.fixture(scope="module")
def t2():
    return table2(seed=SEED, duration=HOURS4)


@pytest.fixture(scope="module")
def t3():
    return table3(seed=SEED, duration=HOURS4)


class TestTable1:
    def test_structure(self, t1):
        assert t1.table_id == "table1"
        assert [row[0] for row in t1.rows] == profile_names()
        assert len(t1.headers) == 4
        assert t1.paper  # side-by-side values included

    def test_conundrum_anomaly(self, t1):
        # Priority-blind methods fail badly; the probe-armed hybrid wins.
        la = cell_percent(t1, "conundrum", "Load Average")
        vm = cell_percent(t1, "conundrum", "vmstat")
        hy = cell_percent(t1, "conundrum", "NWS Hybrid")
        assert la > 25.0 and vm > 25.0
        assert hy < 10.0

    def test_kongo_anomaly(self, t1):
        # The short probe is fooled by the long-running job; the cheap
        # methods are fine.
        la = cell_percent(t1, "kongo", "Load Average")
        hy = cell_percent(t1, "kongo", "NWS Hybrid")
        assert hy > 20.0
        assert la < 15.0
        assert hy > 2.0 * la

    def test_normal_hosts_moderate_errors(self, t1):
        for host in ("thing1", "gremlin", "beowulf"):
            for column in ("Load Average", "vmstat", "NWS Hybrid"):
                assert cell_percent(t1, host, column) < 22.0, (host, column)

    def test_render_contains_all_hosts(self, t1):
        text = t1.render()
        for host in profile_names():
            assert host in text


class TestTable2:
    def test_true_forecasting_close_to_measurement_error(self, t2):
        # The paper's central Table 2 point: prediction adds little error.
        for row in t2.rows:
            for cell in row[1:]:
                match = re.match(r"([\d.]+)% \(([\d.]+)%\)", cell)
                assert match, cell
                forecast_err, meas_err = float(match.group(1)), float(match.group(2))
                assert abs(forecast_err - meas_err) < max(3.0, 0.35 * meas_err)

    def test_kongo_hybrid_stays_pathological(self, t2):
        assert cell_percent(t2, "kongo", "NWS Hybrid") > 20.0


class TestTable3:
    def test_one_step_prediction_errors_small(self, t3):
        # Paper: < 5 % everywhere.  Allow a small margin on the short run.
        for row in t3.rows:
            for cell in row[1:]:
                assert float(cell.rstrip("%")) < 7.0, row

    def test_static_hosts_are_most_predictable(self, t3):
        assert cell_percent(t3, "kongo", "Load Average") < 1.0
        assert cell_percent(t3, "conundrum", "Load Average") < 1.0


class TestTable4:
    @pytest.fixture(scope="class")
    def t4(self):
        return table4(seed=SEED, duration=HOURS4)

    def test_hurst_in_self_similar_range(self, t4):
        for row in t4.rows:
            hurst = float(row[1])
            assert 0.5 < hurst < 1.0, row

    def test_aggregated_variance_not_larger(self, t4):
        # Column pairs: (orig, 300s) per method; aggregation must not
        # inflate variance (paper's kongo/conundrum hybrid exceptions are
        # tiny absolute numbers; allow equality within rounding).
        for row in t4.rows:
            for orig_idx in (2, 4, 6):
                orig = float(row[orig_idx])
                agg = float(row[orig_idx + 1])
                assert agg <= orig + 5e-3, row

    def test_variance_decay_slower_than_iid(self, t4):
        # Self-similarity: var(X^(30)) >> var(X)/30 on the busy hosts.
        for host_row in t4.rows:
            if host_row[0] not in ("thing1", "thing2", "beowulf"):
                continue
            orig = float(host_row[2])
            agg = float(host_row[3])
            assert agg > orig / 30.0, host_row


class TestTable5:
    @pytest.fixture(scope="class")
    def t5(self):
        return table5(seed=SEED, duration=HOURS4)

    def test_cells_parse_and_stars_consistent(self, t5):
        pattern = re.compile(r"(\*?)([\d.]+)% \(([\d.]+)%\)")
        star_count = 0
        for row in t5.rows:
            for cell in row[1:]:
                match = pattern.match(cell)
                assert match, cell
                starred = match.group(1) == "*"
                agg_err = float(match.group(2))
                orig_err = float(match.group(3))
                # The star is computed before display rounding, so only
                # check consistency when the rounded values distinguish.
                if agg_err != orig_err:
                    assert starred == (agg_err < orig_err)
                star_count += starred
        # Paper has a handful of starred cells, not all, not none...
        # on short runs at least the consistency must hold.
        assert 0 <= star_count <= 18


class TestTable6:
    @pytest.fixture(scope="class")
    def t6(self):
        return table6(seed=SEED, duration=SHORT_MEDIUM.duration)

    def test_structure(self, t6):
        assert [row[0] for row in t6.rows] == profile_names()

    def test_kongo_hybrid_pathological_medium_term(self, t6):
        hy = cell_percent(t6, "kongo", "NWS Hybrid")
        la = cell_percent(t6, "kongo", "Load Average")
        assert hy > 15.0 and la < 10.0

    def test_conundrum_hybrid_good_medium_term(self, t6):
        assert cell_percent(t6, "conundrum", "NWS Hybrid") < 12.0
