"""Unit tests for the metrics registry: handles, labels, snapshots."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    install,
    installed,
    uninstall,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total", ())
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("x_total", ())
        with pytest.raises(ValueError, match="decrease"):
            c.inc(-1.0)

    def test_sync_sets_absolute_total(self):
        c = Counter("x_total", ())
        c.sync(10)
        c.sync(17)
        assert c.value == 17.0

    def test_sync_backwards_rejected(self):
        c = Counter("x_total", ())
        c.sync(10)
        with pytest.raises(ValueError, match="backwards"):
            c.sync(9)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth", ())
        g.set(5.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 4.0


class TestHistogram:
    def test_buckets_must_be_sorted_unique_nonempty(self):
        for bad in ((), (2.0, 1.0), (1.0, 1.0)):
            with pytest.raises(ValueError, match="sorted"):
                Histogram("h", (), bad)

    def test_observe_places_values_inclusively(self):
        h = Histogram("h", (), (0.5, 1.0))
        h.observe(0.5)   # == upper bound -> le=0.5 bucket
        h.observe(0.51)  # -> le=1.0 bucket
        h.observe(7.0)   # -> overflow
        assert h.counts == [1, 1, 1]
        assert h.sum == pytest.approx(8.01)
        assert h.count == 3

    def test_cumulative_buckets_end_with_inf_total(self):
        h = Histogram("h", (), (0.5, 1.0))
        for v in (0.1, 0.7, 2.0):
            h.observe(v)
        assert h.cumulative_buckets() == [
            (0.5, 1),
            (1.0, 2),
            (float("inf"), 3),
        ]


class TestRegistry:
    def test_same_name_and_labels_share_a_handle(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", host="a")
        b = registry.counter("repro_x_total", host="a")
        assert a is b

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", host="a", method="m")
        b = registry.counter("repro_x_total", method="m", host="a")
        assert a is b

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", host="a")
        b = registry.counter("repro_x_total", host="b")
        assert a is not b
        a.inc(3)
        samples = registry.snapshot()["repro_x_total"]["samples"]
        assert [s["value"] for s in samples] == [3.0, 0.0]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_invalid_metric_and_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_ok_total", **{"bad-label": "x"})

    def test_histogram_defaults(self):
        registry = MetricsRegistry()
        h = registry.histogram("repro_h")
        assert h.buckets == DEFAULT_BUCKETS

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total").inc()
        registry.gauge("repro_a").set(2.0)
        snap = registry.snapshot()
        assert list(snap) == ["repro_a", "repro_b_total"]
        assert snap["repro_a"] == {
            "type": "gauge",
            "samples": [{"labels": {}, "value": 2.0}],
        }

    def test_callbacks_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.register_callback(
            lambda r: r.gauge("repro_live").set(state["n"])
        )
        state["n"] = 42
        assert registry.snapshot()["repro_live"]["samples"][0]["value"] == 42.0


class TestInstall:
    def test_default_is_null_registry(self):
        assert get_registry() is NULL_REGISTRY

    def test_null_registry_is_inert(self):
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("x").set(1.0)
        NULL_REGISTRY.histogram("x").observe(1.0)
        NULL_REGISTRY.register_callback(lambda r: None)
        assert NULL_REGISTRY.snapshot() == {}

    def test_null_handles_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")

    def test_installed_scopes_and_restores(self):
        registry = MetricsRegistry()
        with installed(registry) as got:
            assert got is registry
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY

    def test_installed_restores_previous_not_null(self):
        outer = MetricsRegistry()
        install(outer)
        try:
            with installed(MetricsRegistry()):
                pass
            assert get_registry() is outer
        finally:
            uninstall()
