"""Tests for repro.sim.scheduler (policies and their accounting)."""

import pytest

from repro.sim.process import Process
from repro.sim.scheduler import (
    DecayUsageScheduler,
    FairShareScheduler,
    RoundRobinScheduler,
)


class TestDecayUsagePriority:
    def test_priority_formula(self):
        sched = DecayUsageScheduler()
        p = Process("p", nice=4)
        p.estcpu = 40.0
        assert sched.priority(p) == pytest.approx(40.0 / 4.0 + 2.0 * 4)

    def test_default_cap_matches_nice_spread(self):
        sched = DecayUsageScheduler()
        # cap / divisor == nice_weight * 19 (the FreeBSD ESTCPULIM idea).
        assert sched.estcpu_cap / sched.estcpu_divisor == pytest.approx(
            sched.nice_weight * 19.0
        )

    def test_charge_caps(self):
        sched = DecayUsageScheduler()
        p = Process("p")
        sched.charge(p, 100.0)
        assert p.estcpu == sched.estcpu_cap

    def test_decay_factor_is_bsd_rule(self):
        sched = DecayUsageScheduler()
        p = Process("p")
        p.estcpu = 90.0
        sched.decay([p], load_average=1.0)
        assert p.estcpu == pytest.approx(90.0 * (2.0 / 3.0))

    def test_decay_zero_load_zeroes_estcpu(self):
        sched = DecayUsageScheduler()
        p = Process("p")
        p.estcpu = 50.0
        sched.decay([p], load_average=0.0)
        assert p.estcpu == 0.0

    def test_pick_lowest_priority_number(self):
        sched = DecayUsageScheduler()
        fresh = Process("fresh")
        tired = Process("tired")
        tired.estcpu = 100.0
        assert sched.pick([tired, fresh], 0.0) is fresh

    def test_pick_tie_break_least_recently_dispatched(self):
        sched = DecayUsageScheduler()
        a, b = Process("a"), Process("b")
        a.last_dispatch = 5.0
        b.last_dispatch = 1.0
        assert sched.pick([a, b], 10.0) is b

    def test_nice_dominates_when_estcpu_capped(self):
        # A capped full-priority process still outranks an idle nice-19.
        sched = DecayUsageScheduler()
        hog = Process("hog")
        hog.estcpu = sched.estcpu_cap
        soaker = Process("soak", nice=19)
        soaker.estcpu = 0.0
        assert sched.priority(hog) <= sched.priority(soaker)

    def test_sleep_boost(self):
        sched = DecayUsageScheduler(sleep_boost=8.0)
        sched.decay([], load_average=1.0)  # sets the decay factor to 2/3
        p = Process("p")
        p.estcpu = 90.0
        sched.on_wake(p, slept_seconds=1.0)
        assert p.estcpu == pytest.approx(90.0 * (2.0 / 3.0) ** 8)

    def test_sleep_boost_disabled(self):
        sched = DecayUsageScheduler(sleep_boost=0.0)
        p = Process("p")
        p.estcpu = 90.0
        sched.on_wake(p, 5.0)
        assert p.estcpu == 90.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayUsageScheduler(charge_rate=0.0)
        with pytest.raises(ValueError):
            DecayUsageScheduler(estcpu_divisor=-1.0)
        with pytest.raises(ValueError):
            DecayUsageScheduler(sleep_boost=-1.0)
        with pytest.raises(ValueError):
            DecayUsageScheduler(estcpu_cap=0.0)


class TestRoundRobin:
    def test_rotates(self):
        sched = RoundRobinScheduler()
        a, b = Process("a"), Process("b")
        a.last_dispatch = 2.0
        b.last_dispatch = 1.0
        assert sched.pick([a, b], 3.0) is b

    def test_priority_blind(self):
        sched = RoundRobinScheduler()
        nice19 = Process("n", nice=19)
        assert sched.priority(nice19) == 0.0


class TestFairShare:
    def test_picks_least_used_user(self):
        sched = FairShareScheduler()
        a = Process("alice:job")
        b = Process("bob:job")
        sched.charge(a, 10.0)
        assert sched.pick([a, b], 0.0) is b

    def test_usage_decays(self):
        sched = FairShareScheduler()
        a = Process("alice:job")
        sched.charge(a, 10.0)
        sched.decay([], 0.0)
        assert sched._usage["alice"] == pytest.approx(9.9)

    def test_groups_by_name_prefix(self):
        sched = FairShareScheduler()
        a1 = Process("alice:one")
        a2 = Process("alice:two")
        b = Process("bob:job")
        sched.charge(a1, 5.0)
        sched.charge(a2, 5.0)
        sched.charge(b, 6.0)
        # alice has 10 total, bob 6: bob's process wins.
        assert sched.pick([a1, a2, b], 0.0) is b
