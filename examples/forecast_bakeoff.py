#!/usr/bin/env python
"""Forecaster bake-off: every NWS battery member vs the adaptive mixture.

Scores all ~21 individual forecasters and the dynamic mixture on three
series with very different characters:

* thing2's load-average trace (bursty interactive machine),
* kongo's trace (nearly constant -- a long-running job),
* synthetic fractional Gaussian noise with H = 0.8 (pure LRD).

The point (Wolski '98, validated here): no single forecaster wins
everywhere, but the mixture is always within a whisker of whatever does.

Run:  python examples/forecast_bakeoff.py
"""

import numpy as np

from repro.analysis import fgn
from repro.core import (
    AdaptiveForecaster,
    default_battery,
    forecast_series,
    one_step_prediction_errors,
)
from repro.experiments.testbed import TestbedConfig
from repro.runner import default_runner


def score(values: np.ndarray) -> dict[str, float]:
    out = {}
    for member in default_battery():
        f = forecast_series(values, member)
        out[member.name] = one_step_prediction_errors(f[1:], values[1:]).mae_percent
    f = forecast_series(values, AdaptiveForecaster())
    out[">>> nws_adaptive"] = one_step_prediction_errors(
        f[1:], values[1:]
    ).mae_percent
    return out


def main() -> None:
    config = TestbedConfig(duration=6 * 3600.0, seed=7)
    print("Simulating 6 hours of thing2 and kongo ...")
    series = {
        "thing2 (bursty)": default_runner().run_one("thing2", config).values("load_average"),
        "kongo (static)": default_runner().run_one("kongo", config).values("load_average"),
        "fGn H=0.8 (synthetic)": np.clip(
            0.6 + 0.1 * fgn(2000, 0.8, rng=1), 0.0, 1.0
        ),
    }

    for name, values in series.items():
        scores = score(values)
        ranked = sorted(scores.items(), key=lambda kv: kv[1])
        mixture_rank = [k for k, _ in ranked].index(">>> nws_adaptive") + 1
        print(f"\n== {name}: {len(values)} samples, "
              f"mixture ranked {mixture_rank}/{len(ranked)} ==")
        for label, mae in ranked[:6]:
            print(f"  {label:24s} {mae:6.2f}%")
        worst_label, worst = ranked[-1]
        print(f"  ... worst: {worst_label:13s} {worst:6.2f}%")

    print("\nNo fixed method wins on all three series; the adaptive mixture")
    print("never strays far from the per-series winner -- which is the whole")
    print("argument for dynamic forecaster selection in the NWS.")


if __name__ == "__main__":
    main()
