#!/usr/bin/env python
"""Full circle: record a real trace, replay it in the simulator.

1. Sample this machine's availability with the live /proc sensors (or, on
   non-Linux platforms, synthesize a plausible trace instead).
2. Replay the recorded availability as background load on a simulated
   host (the replay inverts Equation 1 into a run-queue reconstruction).
3. Run the full NWS suite against the replayed machine and check the
   sensed availability tracks the recording.

This is how archival NWS traces — or your own production measurements —
can be studied under the simulator's controlled conditions.

Run:  python examples/trace_replay.py
"""

import numpy as np

from repro.sensors import MeasurementSuite
from repro.sim import SimHost
from repro.trace.series import TraceSeries
from repro.workload import TraceReplayWorkload


def record_or_synthesize(samples: int = 12) -> TraceSeries:
    try:
        from repro.live import LiveMonitor

        print(f"recording {samples} live samples from this machine ...")
        monitor = LiveMonitor(measure_period=0.5, probe_period=None)
        return monitor.run(samples)["load_average"]
    except RuntimeError:
        print("no /proc here; synthesizing a trace instead")
        rng = np.random.default_rng(0)
        values = np.clip(0.7 + 0.15 * rng.standard_normal(samples), 0.05, 1.0)
        return TraceSeries("synthetic", "load_average",
                           0.5 * np.arange(samples), values)


def main() -> None:
    recorded = record_or_synthesize()
    print(f"recorded from {recorded.host!r}: "
          f"{[f'{100 * v:.0f}%' for v in recorded.values]}")

    # Stretch the recording to minutes so the simulated load average can
    # settle at each level (the live demo samples fast to stay snappy).
    stretched = TraceSeries(
        recorded.host, recorded.method,
        300.0 * np.arange(len(recorded)), recorded.values,
    )

    host = SimHost("replayed-" + recorded.host, seed=1)
    host.attach(TraceReplayWorkload(stretched))
    suite = MeasurementSuite(test_period=None, warmup=0.0).attach(host)
    host.run_until(stretched.duration + 300.0)  # lint: ignore[VEC002] -- replay drives a custom workload

    times, sensed = suite.series("load_average")
    print("\nreplay fidelity (availability at the end of each segment):")
    print(f"{'segment':>8s} {'recorded':>9s} {'replayed':>9s}")
    errors = []
    for i, target in enumerate(stretched.values):
        at = stretched.times[i] + 290.0
        j = int(np.searchsorted(times, at)) - 1
        sensed_value = sensed[max(j, 0)]
        errors.append(abs(sensed_value - target))
        print(f"{i:8d} {100 * target:8.1f}% {100 * sensed_value:8.1f}%")
    print(f"\nmean absolute replay error: {100 * np.mean(errors):.1f}%")


if __name__ == "__main__":
    main()
