#!/usr/bin/env python
"""Quickstart: measure, forecast, and evaluate CPU availability.

Builds one of the paper's testbed hosts (thing1, an interactive research
workstation), attaches the full NWS measurement suite (load-average,
vmstat and hybrid sensors at 10 s, probe at 60 s, a 10 s ground-truth test
process every 10 minutes), simulates four hours of departmental load, and
then reports the three errors the paper distinguishes:

* measurement error (sensor vs test process)      -- Table 1,
* one-step-ahead prediction error (forecast vs next measurement) -- Table 3,
* true forecasting error (forecast vs test process) -- Table 2.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import forecast_series, one_step_prediction_errors
from repro.sensors import MeasurementSuite
from repro.workload import build_host

HOURS = 4


def main() -> None:
    print(f"Simulating {HOURS} hours of 'thing1' under NWS monitoring ...")
    host = build_host("thing1", seed=42)
    suite = MeasurementSuite().attach(host)
    host.run_until(HOURS * 3600.0)  # lint: ignore[VEC002] -- didactic walkthrough of the raw sim layer

    observations = suite.test_observations
    truth = np.array([o.observed for o in observations])
    print(f"\n{len(observations)} ground-truth test-process runs")
    print(f"mean availability a 10s full-priority process obtained: "
          f"{100 * truth.mean():.1f}%")

    print(f"\n{'method':14s} {'measurement':>12s} {'prediction':>11s} "
          f"{'true forecast':>14s}")
    for method in ("load_average", "vmstat", "nws_hybrid"):
        times, values = suite.series(method)
        pre = np.array([o.premeasurements[method] for o in observations])
        measurement_err = 100 * np.abs(pre - truth).mean()

        forecasts = forecast_series(values)
        prediction_err = one_step_prediction_errors(
            forecasts[1:], values[1:]
        ).mae_percent

        aligned, matched_truth = [], []
        for obs in observations:
            i = int(np.searchsorted(times, obs.start_time, side="right")) - 1
            if 0 <= i and i + 1 < forecasts.size and not np.isnan(forecasts[i + 1]):
                aligned.append(forecasts[i + 1])
                matched_truth.append(obs.observed)
        true_forecast_err = 100 * np.abs(
            np.array(aligned) - np.array(matched_truth)
        ).mean()

        print(f"{method:14s} {measurement_err:11.1f}% {prediction_err:10.1f}% "
              f"{true_forecast_err:13.1f}%")

    print("\nThe paper's observation holds: almost all of the error a")
    print("scheduler would see comes from *measuring* availability, not")
    print("from predicting the next measurement.")


if __name__ == "__main__":
    main()
