#!/usr/bin/env python
"""Grid scheduling with availability forecasts (the paper's motivation).

The paper frames CPU availability prediction as the input to dynamic
application schedulers on the computational grid.  This example schedules
a bag of independent CPU-bound tasks (think: the gene-sequence library
comparison of the paper's reference [24]) over a four-host pool containing
both of the pathological machines:

* equal-split: the naive launcher (same number of tasks everywhere);
* random placement;
* NWS-predictive: greedy placement on forecast expansion factors;
* self-scheduling work queue: hosts pull chunks as they finish.

Run:  python examples/grid_scheduler.py
"""

import numpy as np

from repro.schedapp import (
    EqualSplitMapper,
    GridTask,
    PredictiveMapper,
    RandomMapper,
    SimGrid,
    self_schedule,
)

HOSTS = ["thing1", "thing2", "conundrum", "kongo"]
N_TASKS = 24
SEED = 11


def fresh_grid() -> SimGrid:
    grid = SimGrid(HOSTS, seed=SEED)
    grid.advance(3600.0)  # one hour of sensing before any scheduling
    return grid


def main() -> None:
    rng = np.random.default_rng(3)
    tasks = [GridTask(i, float(w))
             for i, w in enumerate(rng.uniform(20, 120, N_TASKS))]
    total_work = sum(t.work for t in tasks)
    print(f"{N_TASKS} independent tasks, {total_work:.0f} CPU-seconds total, "
          f"over {HOSTS}\n")

    grid = fresh_grid()
    print("forecast availability per host after 1 h of NWS sensing:")
    for name, value in grid.forecasts().items():
        print(f"  {name:14s} {100 * value:5.1f}%  "
              f"(expansion factor {1 / max(value, 1e-6):.2f}x)")

    print(f"\n{'strategy':16s} {'makespan':>10s}")
    results = {}
    for mapper in (EqualSplitMapper(), RandomMapper(), PredictiveMapper()):
        grid = fresh_grid()
        assignment = mapper.assign(tasks, grid.forecasts(),
                                   rng=np.random.default_rng(SEED))
        run = grid.execute(assignment)
        results[mapper.name] = run.makespan
        print(f"{mapper.name:16s} {run.makespan:9.1f}s")

    grid = fresh_grid()
    wq = self_schedule(grid, tasks)
    results["workqueue"] = wq.makespan
    print(f"{'workqueue':16s} {wq.makespan:9.1f}s   chunks pulled: "
          f"{wq.chunks_per_host}")

    base = results["equal_split"]
    best = min(results, key=results.get)
    print(f"\nbest strategy: {best} "
          f"({100 * (base / results[best] - 1):.0f}% faster than equal-split)")
    print("\nNote how kongo (long-running job) and conundrum (nice-19")
    print("soaker) distort the static forecasts, and how self-scheduling")
    print("hedges against exactly that -- the practice of the paper's own")
    print("scheduling work [24].")


if __name__ == "__main__":
    main()
