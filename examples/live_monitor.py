#!/usr/bin/env python
"""Live NWS sensing of *this* machine via /proc (Linux only).

Runs the paper's three measurement methods against the real local kernel:
Equation 1 over /proc/loadavg, Equation 2 over differenced /proc/stat
counters, and the probe-arbitrated hybrid with a real spinning probe
(os.times over wall time).  The collected trace is then fed to the NWS
forecasting mixture, exactly as the simulated traces are.

Run:  python examples/live_monitor.py [seconds_between_samples] [count]
"""

import sys

import numpy as np

from repro.core import forecast_series, one_step_prediction_errors


def main() -> None:
    try:
        from repro.live import LiveMonitor, spin_probe
    except RuntimeError as exc:
        print(f"live sensing unavailable on this platform: {exc}")
        return

    interval = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 20

    print(f"probe: a {0.5}s full-priority spin obtained "
          f"{100 * spin_probe(0.5):.0f}% of a CPU right now")
    print(f"\nsampling {count} readings every {interval:g}s "
          f"(probe every {max(3 * interval, 3.0):g}s) ...\n")

    monitor = LiveMonitor(
        measure_period=interval,
        probe_period=max(3 * interval, 3.0),
        probe_duration=min(0.5, interval / 2),
    )
    traces = monitor.run(count)

    la, vm, hy = (traces[m] for m in ("load_average", "vmstat", "nws_hybrid"))
    print(f"{'t (s)':>7s} {'loadavg':>8s} {'vmstat':>8s} {'hybrid':>8s}")
    for i in range(len(la)):
        print(f"{la.times[i]:7.1f} {100 * la.values[i]:7.1f}% "
              f"{100 * vm.values[i]:7.1f}% {100 * hy.values[i]:7.1f}%")

    print(f"\nhybrid currently trusts: {monitor._trusted} "
          f"(bias {monitor._bias:+.3f})")

    if count >= 10:
        values = hy.values
        forecasts = forecast_series(values)
        err = one_step_prediction_errors(forecasts[1:], values[1:])
        print(f"NWS one-step-ahead prediction error on this machine: "
              f"{err.mae_percent:.2f}%")


if __name__ == "__main__":
    main()
