#!/usr/bin/env python
"""The NWS as a service: one server process, clients over HTTP.

Starts a :class:`repro.nws.ForecastServer` on an ephemeral port (the
same server ``nws-repro serve`` runs), then talks to it the way a remote
grid scheduler would -- through :class:`repro.nws.NWSClient.connect`,
whose API is exactly the in-process client's:

1. register this "sensor" with the server's name server (TTL'd);
2. publish a morning of CPU-availability measurements;
3. query forecasts with error bars, at horizon 1 and horizon 30;
4. trip the typed error envelopes: an unknown series comes back as the
   same :class:`~repro.nws.SeriesUnavailable` the in-process transport
   raises (HTTP 404 on the wire), an unknown tenant as
   :class:`~repro.nws.UnknownTenant` (403).

Run:  python examples/serve_and_query.py
"""

import math

import numpy as np

from repro.nws import ForecastServer, NWSClient, SeriesUnavailable, UnknownTenant


def main() -> None:
    with ForecastServer(tenants=("default", "hpc")) as server:
        print(f"forecast server at {server.url} "
              f"(tenants: {', '.join(server.core.tenant_names())})")

        with NWSClient.connect(server.url) as client:
            client.register(
                "sensor.example", "sensor",
                {"resource": "cpu", "host": "example"}, ttl=3600.0,
            )

            # A morning of 10-second measurements: mostly-idle machine
            # with a periodic background job eating CPU.
            rng = np.random.default_rng(11)
            series = "cpu.example.nws_hybrid"
            for i in range(1080):
                t = 10.0 * i
                value = 0.9 - 0.35 * (math.sin(t / 600.0) > 0.6)
                value = min(1.0, max(0.0, value + rng.normal(0.0, 0.02)))
                client.publish(series, time=t, value=value)

            for horizon in (1, 30):
                report = client.query(series, horizon=horizon)
                print(f"horizon {horizon:>2}: forecast "
                      f"{100 * report.forecast:5.1f}% +/- "
                      f"{100 * report.error:4.2f}% "
                      f"({report.method}, n={report.n_measurements})")

            sensors = client.lookup("sensor", resource="cpu")
            print(f"registered sensors: {[r.name for r in sensors]}")

            try:
                client.query("cpu.nonexistent.nws_hybrid")
            except SeriesUnavailable as exc:
                print(f"typed 404 over the wire: {exc}")

            try:
                client.for_tenant("nobody").series_names()
            except UnknownTenant as exc:
                print(f"typed 403 over the wire: {exc}")

            # Tenants are isolated: "hpc" has its own empty data plane.
            print(f"tenant 'hpc' series: "
                  f"{client.for_tenant('hpc').series_names()}")
            print(f"health: {client.health()}")

    print("server stopped")


if __name__ == "__main__":
    main()
