#!/usr/bin/env python
"""Self-similarity study: reproduce the Section 3.1 analysis end-to-end.

Monitors thing1 for a simulated day, then:

1. plots the availability trace (Figure 1 style);
2. computes the first 360 autocorrelations and compares them with the
   white-noise confidence band (Figure 2);
3. runs R/S pox-plot analysis and estimates the Hurst parameter three
   independent ways (Figure 3 / Table 4);
4. validates the estimators against synthetic fractional Gaussian noise of
   known H (the calibration the paper defers to Mandelbrot & Taqqu).

Run:  python examples/self_similarity_study.py
"""

import numpy as np

from repro.analysis import (
    acf,
    acf_confidence_band,
    fgn,
    hurst_aggregated_variance,
    hurst_periodogram,
    hurst_rs,
)
from repro.report.ascii import line_plot, scatter_plot
from repro.sensors import MeasurementSuite
from repro.workload import build_host


def main() -> None:
    print("Simulating 24 hours of 'thing1' ...")
    host = build_host("thing1", seed=7)
    suite = MeasurementSuite(test_period=None).attach(host)
    host.run_until(24 * 3600.0)  # lint: ignore[VEC002] -- didactic walkthrough of the raw sim layer
    times, values = suite.series("load_average")

    print("\n== availability trace (Unix load average) ==")
    print(line_plot(times / 3600.0, 100 * values, width=70, height=10,
                    y_range=(0, 100)))

    print("\n== first 360 autocorrelations ==")
    rho = acf(values, nlags=360)
    print(line_plot(np.arange(361), rho, width=70, height=10, y_range=(0, 1)))
    band = acf_confidence_band(values.size)
    print(f"white-noise 95% band: +-{band:.3f}")
    print(f"mean ACF over lags 1..60 (10 min): {rho[1:61].mean():.3f}")
    print(f"ACF at lag 360 (1 hour):           {rho[360]:.3f}")

    print("\n== R/S pox plot ==")
    est_rs = hurst_rs(values)
    pox = est_rs.detail["pox"]
    fit_x = np.log10(pox.segment_lengths.astype(float))
    print(scatter_plot(pox.log10_d, pox.log10_rs,
                       overlay=(fit_x, pox.regression_line(fit_x))))

    print("\n== Hurst estimates (three methods) ==")
    est_av = hurst_aggregated_variance(values)
    est_pg = hurst_periodogram(values)
    for est in (est_rs, est_av, est_pg):
        flag = "self-similar" if est.is_self_similar_range else "outside (0.5,1)"
        print(f"  {est.method:22s} H = {est.value:.3f}  [{flag}]")

    print("\n== estimator calibration on synthetic fGn ==")
    for true_h in (0.5, 0.7, 0.9):
        x = fgn(1 << 15, true_h, rng=int(true_h * 100))
        print(f"  true H = {true_h:.2f}: "
              f"R/S {hurst_rs(x).value:.3f}, "
              f"agg-var {hurst_aggregated_variance(x).value:.3f}, "
              f"periodogram {hurst_periodogram(x).value:.3f}")

    print("\nConclusion (the paper's): the traces are long-range dependent")
    print("and likely self-similar -- yet, as quickstart.py shows, still")
    print("predictable in the short term.")


if __name__ == "__main__":
    main()
