#!/usr/bin/env python
"""The NWS as a system: name server, memory, forecaster, sensors.

Deploys the (in-process) Network Weather Service over four simulated
hosts, lets it monitor them for two simulated hours, then plays the role
of a grid scheduler client -- everything through the one public API,
:class:`repro.nws.NWSClient`:

1. discover CPU sensors through the name server;
2. query the forecaster for each host's availability with its error bar;
3. place a task on the best host and check how the forecast did;
4. demonstrate memory persistence: the measurement history survives a
   "restart" of the memory component (``client.recover``).

Run:  python examples/nws_service_demo.py
"""

import tempfile

from repro.nws import NWSSystem


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        system = NWSSystem(
            ["thing1", "thing2", "conundrum", "kongo"],
            seed=5,
            memory_directory=tmp,
        )
        print("monitoring 4 hosts for 2 simulated hours ...")
        system.advance(2 * 3600.0)

        # The client adopts the running system's memory, forecaster and
        # name server; the same calls would work over HTTP via
        # NWSClient.connect(url) against `nws-repro serve`.
        client = system.client()

        print("\nname-server discovery:")
        for registration in client.lookup("sensor", resource="cpu"):
            print(f"  {registration.name}")
        registrations = client.lookup()
        print(f"  ({len(registrations)} live components total, incl. "
              f"memory.main and forecaster.main)")

        print(f"\n{'host':12s} {'forecast':>9s} {'error bar':>10s} "
              f"{'method':>20s} {'samples':>8s}")
        hosts = [h.profile for h in system.hosts]
        reports = {
            host: client.query(system.series_name(host, "load_average"))
            for host in hosts
        }
        for host, report in reports.items():
            print(f"{host:12s} {100 * report.forecast:8.1f}% "
                  f"{100 * report.error:9.2f}% {report.method:>20s} "
                  f"{report.n_measurements:8d}")

        best = max(reports, key=lambda h: reports[h].forecast)
        print(f"\na scheduler would place the next task on: {best}")
        print("(note kongo/conundrum read ~50% through load average; the")
        print(" hybrid view would say otherwise -- try method='nws_hybrid')")

        # --- persistence: "restart" the memory and recover a series.
        series = system.series_name("thing1", "load_average")
        times, _values = client.fetch(series)
        recovered = client.recover(series)
        print(f"\nmemory restart: {recovered} of {len(times)} samples "
              f"recovered from the journal")
        assert recovered == len(times)


if __name__ == "__main__":
    main()
